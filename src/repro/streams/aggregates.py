"""Aggregate functions over window contents.

Aggregates follow a simple accumulate-then-finalize protocol
(:class:`Aggregate`): one instance is created per evaluation, values are
fed with :meth:`Aggregate.add`, and :meth:`Aggregate.result` produces the
final value. Windowed operators re-evaluate their aggregates each time the
window slides, which keeps every aggregate trivially correct under
eviction (no retraction logic to get wrong) at O(window) cost per slide —
the right trade-off at the data rates of the paper's deployments (5 Hz
RFID polls, 5-minute sensor epochs).

User-defined aggregates (UDAs, paper §3.3) are supported through
:func:`register_aggregate`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.errors import AggregateError


class Aggregate:
    """Base class for aggregate functions.

    Subclasses override :meth:`add` and :meth:`result`. ``None`` inputs are
    skipped by convention (SQL-style NULL handling) except for ``count(*)``,
    which is expressed by feeding a non-None marker for every row.
    """

    #: Value returned when the aggregate saw no (non-None) input.
    empty_result: Any = None

    def add(self, value: Any) -> None:
        """Accumulate one input value."""
        raise NotImplementedError

    def result(self) -> Any:
        """Return the aggregate of everything added so far."""
        raise NotImplementedError

    @classmethod
    def over(cls, values: Iterable[Any], *args: Any, **kwargs: Any) -> Any:
        """Convenience: evaluate this aggregate over an iterable."""
        agg = cls(*args, **kwargs)
        for value in values:
            agg.add(value)
        return agg.result()


class Count(Aggregate):
    """``count(expr)`` — number of non-None inputs."""

    empty_result = 0

    def __init__(self):
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._n += 1

    def result(self) -> int:
        return self._n


class CountDistinct(Aggregate):
    """``count(distinct expr)`` — number of distinct non-None inputs."""

    empty_result = 0

    def __init__(self):
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


class Sum(Aggregate):
    """``sum(expr)`` — sum of non-None inputs; None when empty."""

    def __init__(self):
        self._total = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._total += float(value)
            self._n += 1

    def result(self) -> float | None:
        return self._total if self._n else None


class Avg(Aggregate):
    """``avg(expr)`` — arithmetic mean of non-None inputs; None when empty."""

    def __init__(self):
        self._total = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._total += float(value)
            self._n += 1

    def result(self) -> float | None:
        return self._total / self._n if self._n else None


class Stdev(Aggregate):
    """``stdev(expr)`` — sample standard deviation (ddof=1).

    Returns 0.0 for a single input and None for no input. Uses Welford's
    online algorithm for numerical stability — the redwood traces
    accumulate thousands of near-identical temperatures where the naive
    sum-of-squares formula loses precision.
    """

    def __init__(self):
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._n += 1
        delta = float(value) - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (float(value) - self._mean)

    def result(self) -> float | None:
        if self._n == 0:
            return None
        if self._n == 1:
            return 0.0
        return math.sqrt(self._m2 / (self._n - 1))


class Min(Aggregate):
    """``min(expr)`` — minimum non-None input; None when empty."""

    def __init__(self):
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self._best is None or value < self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


class Max(Aggregate):
    """``max(expr)`` — maximum non-None input; None when empty."""

    def __init__(self):
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self._best is None or value > self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


class Median(Aggregate):
    """``median(expr)`` — median of non-None inputs; None when empty.

    Not a CQL builtin, but part of the ESP operator toolkit: the robust
    alternative to ``avg`` used in the MAD outlier-rejection ablation.
    """

    def __init__(self):
        self._values: list[float] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(float(value))

    def result(self) -> float | None:
        if not self._values:
            return None
        ordered = sorted(self._values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class Mad(Aggregate):
    """``mad(expr)`` — median absolute deviation of non-None inputs.

    Used by the toolkit's robust outlier detector (DESIGN.md ablation 4).
    """

    def __init__(self):
        self._values: list[float] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(float(value))

    def result(self) -> float | None:
        if not self._values:
            return None
        center = Median.over(self._values)
        return Median.over(abs(v - center) for v in self._values)


class First(Aggregate):
    """``first(expr)`` — earliest non-None input; None when empty."""

    def __init__(self):
        self._value: Any = None
        self._set = False

    def add(self, value: Any) -> None:
        if value is not None and not self._set:
            self._value = value
            self._set = True

    def result(self) -> Any:
        return self._value


class Last(Aggregate):
    """``last(expr)`` — latest non-None input; None when empty."""

    def __init__(self):
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is not None:
            self._value = value

    def result(self) -> Any:
        return self._value


#: Registry of aggregate factories, keyed by lowercase name.
_REGISTRY: dict[str, Callable[[], Aggregate]] = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "mean": Avg,
    "stdev": Stdev,
    "stddev": Stdev,
    "min": Min,
    "max": Max,
    "median": Median,
    "mad": Mad,
    "first": First,
    "last": Last,
}


def aggregate_names() -> frozenset[str]:
    """Names of all registered aggregates (lowercase)."""
    return frozenset(_REGISTRY)


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register a user-defined aggregate under ``name`` (case-insensitive).

    The factory must return a fresh :class:`Aggregate` per call. Registering
    an existing name replaces it, which lets deployments specialize builtins.
    """
    _REGISTRY[name.lower()] = factory


def get_aggregate(name: str, distinct: bool = False) -> Aggregate:
    """Instantiate the aggregate registered under ``name``.

    Args:
        name: Aggregate name, case-insensitive.
        distinct: Evaluate over distinct inputs. ``count(distinct x)`` maps
            to :class:`CountDistinct`; for other aggregates a distinct
            filter wrapper is applied.

    Raises:
        AggregateError: If no aggregate is registered under ``name``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise AggregateError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        )
    if not distinct:
        return _REGISTRY[key]()
    if key == "count":
        return CountDistinct()
    return _DistinctWrapper(_REGISTRY[key]())


class _DistinctWrapper(Aggregate):
    """Feed each distinct value to the wrapped aggregate once."""

    def __init__(self, inner: Aggregate):
        self._inner = inner
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def result(self) -> Any:
        return self._inner.result()


class AggregateSpec:
    """A bound aggregate call as it appears in a query plan.

    Args:
        name: Registered aggregate name (``"count"``, ``"avg"``, ...).
        argument: Callable extracting the input value from a tuple, or
            ``None`` for ``count(*)`` semantics (every row counts).
        distinct: Whether the call is over distinct argument values.
        output: Field name for the result in the output tuple.

    Example:
        >>> from repro.streams.tuples import StreamTuple
        >>> spec = AggregateSpec("count", lambda t: t["tag_id"],
        ...                      distinct=True, output="n_tags")
        >>> rows = [StreamTuple(0, {"tag_id": x}) for x in "aab"]
        >>> spec.evaluate(rows)
        2
    """

    __slots__ = ("name", "argument", "distinct", "output")

    def __init__(
        self,
        name: str,
        argument: Callable[[Any], Any] | None = None,
        distinct: bool = False,
        output: str | None = None,
    ):
        self.name = name.lower()
        self.argument = argument
        self.distinct = distinct
        self.output = output or self._default_output()

    def _default_output(self) -> str:
        star = "*" if self.argument is None else "expr"
        prefix = "distinct_" if self.distinct else ""
        return f"{self.name}_{prefix}{star}".replace("*", "star")

    def evaluate(self, rows: Iterable[Any]) -> Any:
        """Evaluate this aggregate over an iterable of tuples."""
        agg = get_aggregate(self.name, distinct=self.distinct)
        for row in rows:
            agg.add(1 if self.argument is None else self.argument(row))
        return agg.result()

    def __repr__(self) -> str:
        arg = "*" if self.argument is None else "<expr>"
        distinct = "distinct " if self.distinct else ""
        return f"AggregateSpec({self.name}({distinct}{arg}) AS {self.output})"
