"""Trace persistence: write and replay receptor streams.

Real deployments of a cleaning framework live on recorded traces — for
regression-testing pipelines against yesterday's data, sharing a
problematic trace with the vendor, or feeding this library's pipelines
with data from actual hardware. Two formats:

- **JSONL** — one JSON object per tuple, lossless for any field types
  JSON can carry (the recommended interchange format);
- **CSV** — flat and spreadsheet-friendly; field types are inferred on
  read (int, then float, then string) unless overridden.

Both formats carry the tuple timestamp and stream name in reserved
columns (``_ts``, ``_stream``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.streams.tuples import StreamTuple

#: Reserved column names in both formats.
TIMESTAMP_COLUMN = "_ts"
STREAM_COLUMN = "_stream"


def write_jsonl(tuples: Iterable[StreamTuple], path: "str | Path") -> int:
    """Write tuples as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for item in tuples:
            record = {
                TIMESTAMP_COLUMN: item.timestamp,
                STREAM_COLUMN: item.stream,
                **item.as_dict(),
            }
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: "str | Path") -> list[StreamTuple]:
    """Read tuples written by :func:`write_jsonl`.

    Raises:
        ReproError: On malformed lines or missing reserved columns, with
            the offending line number.
    """
    tuples: list[StreamTuple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            if TIMESTAMP_COLUMN not in record:
                raise ReproError(
                    f"{path}:{line_number}: missing {TIMESTAMP_COLUMN!r}"
                )
            timestamp = record.pop(TIMESTAMP_COLUMN)
            stream = record.pop(STREAM_COLUMN, "")
            tuples.append(StreamTuple(timestamp, record, stream))
    return tuples


def write_csv(
    tuples: Sequence[StreamTuple],
    path: "str | Path",
    fields: Sequence[str] | None = None,
) -> int:
    """Write tuples as CSV; returns the number written.

    Args:
        tuples: The trace (materialized; the header needs the field set).
        path: Output file.
        fields: Column order; defaults to the union of all field names,
            sorted. Tuples missing a column write an empty cell.
    """
    items = list(tuples)
    if fields is None:
        names: set[str] = set()
        for item in items:
            names.update(item.keys())
        fields = sorted(names)
    header = [TIMESTAMP_COLUMN, STREAM_COLUMN, *fields]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for item in items:
            row: list[Any] = [item.timestamp, item.stream]
            row.extend(item.get(field, "") for field in fields)
            writer.writerow(row)
    return len(items)


def _infer(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(
    path: "str | Path",
    field_types: Mapping[str, Callable[[str], Any]] | None = None,
) -> list[StreamTuple]:
    """Read tuples written by :func:`write_csv`.

    Args:
        path: Input file.
        field_types: Optional per-column converters overriding the
            default int→float→string inference (empty cells always read
            as None).

    Raises:
        ReproError: On a missing header or timestamp column.
    """
    converters = dict(field_types or {})
    tuples: list[StreamTuple] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty CSV trace") from None
        if TIMESTAMP_COLUMN not in header:
            raise ReproError(
                f"{path}: header lacks the {TIMESTAMP_COLUMN!r} column"
            )
        ts_index = header.index(TIMESTAMP_COLUMN)
        stream_index = (
            header.index(STREAM_COLUMN) if STREAM_COLUMN in header else None
        )
        for row in reader:
            values: dict[str, Any] = {}
            for index, column in enumerate(header):
                if index in (ts_index, stream_index):
                    continue
                cell = row[index] if index < len(row) else ""
                if column in converters:
                    values[column] = converters[column](cell) if cell else None
                else:
                    values[column] = _infer(cell)
            # Drop columns that were empty for this row entirely? No —
            # None carries "field absent in this reading" faithfully
            # enough, but sparse traces read tighter without them.
            values = {k: v for k, v in values.items() if v is not None}
            stream = row[stream_index] if stream_index is not None else ""
            tuples.append(StreamTuple(float(row[ts_index]), values, stream))
    return tuples


def write_trace_events(
    events: Iterable[Mapping[str, Any]],
    path: "str | Path",
) -> int:
    """Write telemetry trace events as JSON lines; returns the count.

    Events come from a telemetry snapshot's ``"events"`` list (see
    :mod:`repro.streams.telemetry`). Keys are sorted so the output is
    byte-stable for deterministic event streams.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(dict(event), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_trace_events(path: "str | Path") -> list[dict[str, Any]]:
    """Read trace events written by :func:`write_trace_events`.

    Raises:
        ReproError: On malformed lines or events lacking a ``kind``
            field, with the offending line number.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            if not isinstance(event, dict) or "kind" not in event:
                raise ReproError(
                    f"{path}:{line_number}: trace event lacks a 'kind' field"
                )
            events.append(event)
    return events


def save_recording(
    recording: Mapping[str, Sequence[StreamTuple]],
    directory: "str | Path",
) -> dict[str, Path]:
    """Persist a scenario recording (receptor id → readings) as JSONL.

    Returns:
        Receptor id → written file path (``<id>.jsonl`` in ``directory``).
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for receptor_id, readings in recording.items():
        target = base / f"{receptor_id}.jsonl"
        write_jsonl(readings, target)
        written[receptor_id] = target
    return written


def load_recording(directory: "str | Path") -> dict[str, list[StreamTuple]]:
    """Load a recording saved by :func:`save_recording`."""
    base = Path(directory)
    if not base.is_dir():
        raise ReproError(f"{base} is not a directory")
    recording: dict[str, list[StreamTuple]] = {}
    for path in sorted(base.glob("*.jsonl")):
        recording[path.stem] = read_jsonl(path)
    if not recording:
        raise ReproError(f"no .jsonl traces found in {base}")
    return recording
