"""Timestamped tuple data model.

A :class:`StreamTuple` is the unit of data flowing through every stream in
the system: a timestamp (float seconds on the simulation time axis), the
name of the stream it belongs to, and a mapping of field names to values.

Tuples are treated as immutable by convention (see "we are all responsible
users"): operators never mutate an input tuple in place; they derive new
tuples via :meth:`StreamTuple.derive`.

Field values are **native Python objects** — an int cell is ``int``, a
float cell is ``float`` — regardless of how the value was stored in
between. The columnar engine may hold a run of tuples as numpy-typed
columns (:mod:`repro.streams.typedcols`), but decoding always goes
through ``ndarray.tolist()``, which rebuilds native objects bit-exactly;
numpy scalar types never appear in a materialized tuple. Code consuming
tuples may therefore rely on exact ``type()`` checks and on JSON
serializability of every value it put in.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import SchemaError


class StreamTuple:
    """A single timestamped record in a data stream.

    Args:
        timestamp: Time of the reading, in seconds on the simulation axis.
        values: Mapping of field name to field value.
        stream: Name of the stream this tuple belongs to. Operators that
            union multiple streams preserve the originating stream name so
            that later stages (e.g. Virtualize) can distinguish sources.

    Example:
        >>> t = StreamTuple(1.0, {"tag_id": "T7", "shelf": 0})
        >>> t["tag_id"]
        'T7'
        >>> t.derive(values={"shelf": 1})["shelf"]
        1
    """

    __slots__ = ("timestamp", "stream", "_values")

    def __init__(
        self,
        timestamp: float,
        values: Mapping[str, Any] | None = None,
        stream: str = "",
    ):
        self.timestamp = float(timestamp)
        self.stream = stream
        self._values: dict[str, Any] = dict(values) if values else {}

    @classmethod
    def _from_parts(
        cls, timestamp: float, values: dict[str, Any], stream: str
    ) -> "StreamTuple":
        """Hot-path constructor taking ownership of ``values``.

        Skips the defensive ``dict`` copy and ``float`` coercion of
        ``__init__``; callers (columnar batch decoding) guarantee the
        dict is freshly built and the timestamp is already a float.
        """
        item = cls.__new__(cls)
        item.timestamp = timestamp
        item.stream = stream
        item._values = values
        return item

    # -- mapping-style access -------------------------------------------------

    def __getitem__(self, field: str) -> Any:
        try:
            return self._values[field]
        except KeyError:
            raise SchemaError(
                f"tuple from stream {self.stream!r} has no field {field!r}; "
                f"available fields: {sorted(self._values)}"
            ) from None

    def get(self, field: str, default: Any = None) -> Any:
        """Return the value of ``field``, or ``default`` if absent."""
        return self._values.get(field, default)

    def __contains__(self, field: str) -> bool:
        return field in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def keys(self):
        """Return the field names of this tuple."""
        return self._values.keys()

    def items(self):
        """Return (field, value) pairs of this tuple."""
        return self._values.items()

    def as_dict(self) -> dict[str, Any]:
        """Return a copy of the field mapping."""
        return dict(self._values)

    # -- derivation -----------------------------------------------------------

    def derive(
        self,
        timestamp: float | None = None,
        values: Mapping[str, Any] | None = None,
        stream: str | None = None,
        drop: tuple[str, ...] = (),
    ) -> "StreamTuple":
        """Return a new tuple based on this one.

        Args:
            timestamp: Replacement timestamp, or ``None`` to keep this one.
            values: Fields to add or overwrite.
            stream: Replacement stream name, or ``None`` to keep this one.
            drop: Field names to remove from the derived tuple.
        """
        new_values = dict(self._values)
        for field in drop:
            new_values.pop(field, None)
        if values:
            new_values.update(values)
        return StreamTuple(
            self.timestamp if timestamp is None else timestamp,
            new_values,
            self.stream if stream is None else stream,
        )

    def project(self, fields: tuple[str, ...]) -> "StreamTuple":
        """Return a new tuple containing only ``fields`` (in any order)."""
        return StreamTuple(
            self.timestamp,
            {f: self[f] for f in fields},
            self.stream,
        )

    # -- comparisons / display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.stream == other.stream
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash(
            (self.timestamp, self.stream, tuple(sorted(self._values.items())))
        )

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        origin = f" stream={self.stream!r}" if self.stream else ""
        return f"StreamTuple(t={self.timestamp:g}{origin} {{{fields}}})"
