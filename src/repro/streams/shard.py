"""Sharded, batch-pipelined execution of Fjord dataflows.

The ESP pipeline is embarrassingly parallel across shard keys: once a
stream is partitioned on a key that the pipeline's stateful operators
group by (the spatial granule for Merge pipelines, the tag id for
Arbitrate pipelines), each partition cleans independently — Bleach-style
stream partitioning [Tian et al. 2016], with DataX-style batched tuple
transport between the workers and the merger [Coviello et al. 2021].

This module runs N independent :class:`~repro.streams.fjord.Fjord`
sub-pipelines — one per shard of the key space — over the same
punctuation ticks, via a pluggable backend:

- ``serial`` — shards run one after another in-process; the
  deterministic reference implementation.
- ``threads`` — a thread pool; bounded by the GIL for pure-Python
  operators, but proves the engine is free of shared mutable state.
- ``processes`` — forked worker processes with batched tuple transport
  back to the parent (operators are CPU-bound pure Python, so this is
  the backend that actually buys parallel speed-up).

**Determinism guarantee.** Backends differ only in *where* shards run;
every shard's computation is a pure function of its input slice, and the
merger reassembles the output on the time axis: per punctuation tick,
the shards' emissions are concatenated in shard order and stable-sorted
by the shard key. The result is therefore bit-for-bit identical across
backends and shard counts. It is additionally bit-for-bit identical to
single-threaded Fjord execution whenever the sequential pipeline's
per-tick emission order is itself key-sorted — which holds for every
terminal ESP stage in this codebase (Arbitrate and the Merge operators
emit in sorted key order, and the windowed group-bys emit in
component-wise sorted key order). The differential harness in
``tests/test_shard_equivalence.py`` pins this equivalence.

**Correctness precondition.** Sharding is only sound when no stateful
operator needs to see tuples from two different shard keys (e.g. a
``HAVING`` clause comparing groups across keys); partition on the key
your pipeline's widest stateful operator groups by.
"""

from __future__ import annotations

import traceback
import zlib
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import OperatorError
from repro.streams.columnar import ColumnBatch
from repro.streams.fjord import MODES, Fjord
from repro.streams.operators import SinkOp
from repro.streams.telemetry import (
    NULL_COLLECTOR,
    TelemetryCollector,
    default_telemetry,
    resolve_telemetry,
)
from repro.streams.tuples import StreamTuple

#: Supported execution backends, in increasing order of parallelism.
BACKENDS = ("serial", "threads", "processes")

#: Tuples per transport message from a worker process to the merger.
DEFAULT_BATCH_SIZE = 512

#: A shard builder: given its slice of every source, wire a fresh
#: pipeline and return the Fjord plus the sink carrying its output.
ShardBuilder = Callable[
    [Mapping[str, "list[StreamTuple]"]], "tuple[Fjord, SinkOp]"
]

# -- execution defaults (wired from the CLI's --shards/--backend) --------------

_DEFAULT_EXECUTION: dict[str, Any] = {
    "shards": 1,
    "backend": "serial",
    "mode": "row",
}


def set_default_execution(
    shards: int | None = None,
    backend: str | None = None,
    mode: str | None = None,
) -> None:
    """Set process-wide defaults used when a run() omits execution options.

    The CLI's ``--shards``/``--backend``/``--mode`` flags call this so
    that every experiment's internal :meth:`ESPProcessor.run` picks the
    requested execution mode without each experiment threading the
    options through.
    """
    if shards is not None:
        if int(shards) < 1:
            _invalid_execution("shards", shards)
            raise OperatorError(f"shards must be >= 1, got {shards}")
        _DEFAULT_EXECUTION["shards"] = int(shards)
    if backend is not None:
        if backend not in BACKENDS:
            _invalid_execution("backend", backend)
            raise OperatorError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        _DEFAULT_EXECUTION["backend"] = backend
    if mode is not None:
        if mode not in MODES:
            _invalid_execution("mode", mode)
            raise OperatorError(
                f"unknown execution mode {mode!r}; expected one of {MODES}"
            )
        _DEFAULT_EXECUTION["mode"] = mode


def default_execution() -> tuple[int, str]:
    """The current process-wide (shards, backend) defaults."""
    return _DEFAULT_EXECUTION["shards"], _DEFAULT_EXECUTION["backend"]


def default_mode() -> str:
    """The current process-wide execution mode default."""
    return _DEFAULT_EXECUTION["mode"]


def resolve_mode(mode: str | None) -> str:
    """Fill an unset execution mode from the process-wide default."""
    if mode is None:
        return default_mode()
    if mode not in MODES:
        _invalid_execution("mode", mode)
        raise OperatorError(
            f"unknown execution mode {mode!r}; expected one of {MODES}"
        )
    return mode


def _invalid_execution(option: str, value: Any) -> None:
    """Record a shard/backend validation failure as a trace event.

    Emitted to the process-wide default collector just before the
    matching :class:`OperatorError` is raised, so post-mortem trace
    logs show rejected CLI/API execution options alongside the run.
    """
    default_telemetry().event(
        "validation_error", option=option, value=str(value)
    )


def resolve_execution(
    shards: int | None, backend: str | None
) -> tuple[int, str]:
    """Fill unset execution options from the process-wide defaults."""
    default_shards, default_backend = default_execution()
    shards = default_shards if shards is None else int(shards)
    backend = default_backend if backend is None else backend
    if shards < 1:
        _invalid_execution("shards", shards)
        raise OperatorError(f"shards must be >= 1, got {shards}")
    if backend not in BACKENDS:
        _invalid_execution("backend", backend)
        raise OperatorError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return shards, backend


# -- partitioning --------------------------------------------------------------


def shard_of(key: Any, shards: int) -> int:
    """Deterministically map a shard key to a shard index.

    Uses CRC-32 of the key's string form rather than :func:`hash` so the
    assignment is stable across processes and interpreter runs (Python
    string hashing is salted per process).
    """
    return zlib.crc32(str(key).encode("utf-8")) % shards


def partition_sources(
    sources: Mapping[str, Sequence[StreamTuple]],
    key: "str | Callable[[str, StreamTuple], Any]",
    shards: int,
) -> list[dict[str, list[StreamTuple]]]:
    """Split every source's tuples into per-shard slices.

    Args:
        sources: Source name → timestamp-sorted tuples.
        key: Shard key — a field name read off each tuple, or a callable
            ``key(source_name, tuple)`` (e.g. a registry lookup that maps
            a device's whole stream to its spatial granule).
        shards: Number of shards.

    Returns:
        One mapping per shard. Every shard mapping contains *every*
        source name (possibly with an empty slice) so builders can wire
        the same graph regardless of which keys landed where; slices
        preserve the source's tuple order.

    A source given as a :class:`~repro.streams.columnar.ColumnBatch`
    is partitioned with :func:`partition_batch` and lands in each shard
    mapping as a ColumnBatch slice (same keys, same order guarantee).
    """
    if shards < 1:
        raise OperatorError(f"shards must be >= 1, got {shards}")
    key_fn = (
        key
        if callable(key)
        else (lambda source, item, _field=key: item.get(_field))
    )
    out: list[dict[str, "list[StreamTuple] | ColumnBatch"]] = [
        {name: [] for name in sources} for _ in range(shards)
    ]
    for name, items in sources.items():
        if isinstance(items, ColumnBatch):
            parts = partition_batch(
                items, lambda item, _name=name: key_fn(_name, item), shards
            )
            for index in range(shards):
                out[index][name] = parts[index]
            continue
        slices = [out[index][name] for index in range(shards)]
        for item in items:
            slices[shard_of(key_fn(name, item), shards)].append(item)
    return out


def partition_batch(
    batch: ColumnBatch,
    key: "str | Callable[[StreamTuple], Any]",
    shards: int,
) -> list[ColumnBatch]:
    """Split one ColumnBatch into per-shard row slices.

    Args:
        batch: The batch to split.
        key: Shard key — a field name read off each row (absent fields
            key as ``None``, matching :func:`partition_sources`), or a
            callable ``key(tuple)``.
        shards: Number of shards.

    Returns:
        One batch per shard (possibly empty), rows in original order;
        row ``i`` lands in shard ``shard_of(key(row_i), shards)``,
        exactly as :func:`partition_sources` assigns row tuples. With
        ``shards == 1`` the input batch is returned unsliced.

    Typed (numpy-backed) columns survive partitioning: the per-shard
    ``take`` slices an array column with one fancy-index per shard, and
    the slices pickle cleanly across the ``processes`` backend boundary
    (``MISSING`` and ndarrays are both reduce-safe).
    """
    if shards < 1:
        raise OperatorError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return [batch]
    key_fn = (
        key
        if callable(key)
        else (lambda item, _field=key: item.get(_field))
    )
    buckets: list[list[int]] = [[] for _ in range(shards)]
    for index, item in enumerate(batch.tuples()):
        buckets[shard_of(key_fn(item), shards)].append(index)
    return [batch.take(indices) for indices in buckets]


# -- per-shard execution -------------------------------------------------------


class ShardResult:
    """One shard's run: per-tick output, flow counters, telemetry.

    ``telemetry`` is the shard collector's snapshot dict (see
    :func:`repro.streams.telemetry.empty_snapshot`), or ``None`` when
    the run was uninstrumented. Snapshots are plain data, so they cross
    the worker-process pipe unchanged.
    """

    __slots__ = ("per_tick", "stats", "telemetry")

    def __init__(
        self,
        per_tick: list[list[StreamTuple]],
        stats: dict[str, tuple[int, int]],
        telemetry: "dict[str, Any] | None" = None,
    ):
        self.per_tick = per_tick
        self.stats = stats
        self.telemetry = telemetry


def _run_shard(
    build: Callable[[], "tuple[Fjord, SinkOp]"],
    ticks: Sequence[float],
    telemetry: TelemetryCollector = NULL_COLLECTOR,
    mode: str = "row",
) -> ShardResult:
    """Build and run one shard, attributing sink output to its tick.

    Each shard gets a *fresh* collector (``telemetry.spawn()``) so that
    concurrent shards never contend on shared accumulators; the parent
    absorbs the per-shard snapshots afterwards, in shard order.
    """
    child = telemetry.spawn() if telemetry.enabled else NULL_COLLECTOR
    fjord, sink = build()
    per_tick: list[list[StreamTuple]] = []
    mark = 0
    for _now in fjord.run_stepped(ticks, telemetry=child, mode=mode):
        results = sink.results
        per_tick.append(results[mark:])
        mark = len(results)
    return ShardResult(
        per_tick,
        fjord.stats(),
        child.snapshot() if child.enabled else None,
    )


def _run_serial(builders, ticks, telemetry, mode) -> list[ShardResult]:
    return [_run_shard(build, ticks, telemetry, mode) for build in builders]


def _run_threads(builders, ticks, telemetry, mode) -> list[ShardResult]:
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=len(builders)) as pool:
        futures = [
            pool.submit(_run_shard, build, ticks, telemetry, mode)
            for build in builders
        ]
        return [future.result() for future in futures]


def _process_worker(
    connection, build, ticks, batch_size, telemetry, mode="row"
) -> None:
    """Forked worker: run one shard, stream results back in batches.

    Transport protocol (one tuple per message): ``("batch", [(tick_index,
    [tuples...]), ...])`` chunks of at least ``batch_size`` tuples, then
    ``("done", (stats, telemetry_snapshot))`` — or ``("error",
    formatted_traceback)``. The telemetry snapshot rides the final
    message: counters are tiny next to the tuple payload, and sending
    them once avoids interleaving metrics with data batches.
    """
    try:
        result = _run_shard(build, ticks, telemetry, mode)
        chunk: list[tuple[int, list[StreamTuple]]] = []
        pending = 0
        for tick_index, tuples in enumerate(result.per_tick):
            if not tuples:
                continue
            chunk.append((tick_index, tuples))
            pending += len(tuples)
            if pending >= batch_size:
                connection.send(("batch", chunk))
                chunk, pending = [], 0
        if chunk:
            connection.send(("batch", chunk))
        connection.send(("done", (result.stats, result.telemetry)))
    except BaseException:
        try:
            connection.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        connection.close()


def _run_processes(
    builders, ticks, batch_size, telemetry, mode
) -> list[ShardResult]:
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        raise OperatorError(
            "the 'processes' backend needs the fork start method, which "
            "this platform does not provide; pipelines hold unpicklable "
            "operator closures, so use backend='threads' or 'serial'"
        )
    context = multiprocessing.get_context("fork")
    workers = []
    for build in builders:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_process_worker,
            args=(sender, build, ticks, batch_size, telemetry, mode),
        )
        process.start()
        sender.close()
        workers.append((process, receiver))
    results: list[ShardResult] = []
    failure: str | None = None
    for process, receiver in workers:
        per_tick: list[list[StreamTuple]] = [[] for _ in ticks]
        stats: dict[str, tuple[int, int]] = {}
        shard_telemetry: "dict[str, Any] | None" = None
        try:
            while True:
                kind, payload = receiver.recv()
                if kind == "batch":
                    for tick_index, tuples in payload:
                        per_tick[tick_index].extend(tuples)
                elif kind == "done":
                    stats, shard_telemetry = payload
                    break
                else:  # "error"
                    failure = failure or payload
                    break
        except EOFError:
            failure = failure or (
                "shard worker exited without reporting a result"
            )
        finally:
            receiver.close()
        results.append(ShardResult(per_tick, stats, shard_telemetry))
    for process, _receiver in workers:
        process.join()
    if failure is not None:
        raise OperatorError(f"shard worker failed:\n{failure}")
    return results


def run_shard_jobs(
    builders: Sequence[Callable[[], "tuple[Fjord, SinkOp]"]],
    ticks: Sequence[float],
    backend: str = "serial",
    batch_size: int = DEFAULT_BATCH_SIZE,
    telemetry: TelemetryCollector | None = None,
    mode: str | None = None,
) -> list[ShardResult]:
    """Run pre-partitioned shard builders on the chosen backend.

    The low-level entry point: callers that partition their own inputs
    (e.g. :class:`~repro.core.pipeline.ESPProcessor`) construct one
    zero-argument builder per shard and merge the results themselves
    with :func:`merge_outputs` / :func:`merge_stats`.

    When telemetry is enabled, every shard runs under a freshly spawned
    collector and the per-shard snapshots are absorbed back into
    ``telemetry`` *in shard order* — on every backend — so the merged
    metrics are deterministic and their tuple totals equal a sequential
    run's (the same argument as :func:`merge_stats`).
    """
    collector = resolve_telemetry(telemetry)
    if backend not in BACKENDS:
        _invalid_execution("backend", backend)
        raise OperatorError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if batch_size < 1:
        raise OperatorError(f"batch_size must be >= 1, got {batch_size}")
    mode = resolve_mode(mode)
    ticks = list(ticks)
    if backend == "threads":
        results = _run_threads(builders, ticks, collector, mode)
    elif backend == "processes":
        results = _run_processes(builders, ticks, batch_size, collector, mode)
    else:
        results = _run_serial(builders, ticks, collector, mode)
    if collector.enabled:
        for index, result in enumerate(results):
            if result.telemetry is not None:
                collector.absorb(result.telemetry, shard=index)
    return results


# -- merging -------------------------------------------------------------------


def merge_outputs(
    results: Sequence[ShardResult],
    order_key: Callable[[StreamTuple], Any],
) -> list[StreamTuple]:
    """Deterministically merge shard outputs on the time axis.

    Per tick: concatenate the shards' emissions in shard order, then
    stable-sort by ``order_key``. Tuples sharing an ``order_key`` value
    live in a single shard (it is the shard key), so the stable sort
    preserves their pipeline emission order while fixing the cross-shard
    interleaving — the same interleaving a key-sorted sequential pipeline
    produces.
    """
    n_ticks = max((len(result.per_tick) for result in results), default=0)
    out: list[StreamTuple] = []
    for tick_index in range(n_ticks):
        bucket: list[StreamTuple] = []
        for result in results:
            if tick_index < len(result.per_tick):
                bucket.extend(result.per_tick[tick_index])
        bucket.sort(key=order_key)
        out.extend(bucket)
    return out


def merge_stats(
    results: Sequence[ShardResult],
) -> dict[str, tuple[int, int]]:
    """Sum per-node flow counters across shards.

    Shards run structurally identical graphs over disjoint key slices,
    so the per-node sums equal the sequential pipeline's counters.
    """
    totals: dict[str, tuple[int, int]] = {}
    for result in results:
        for name, (tuples_in, tuples_out) in result.stats.items():
            seen_in, seen_out = totals.get(name, (0, 0))
            totals[name] = (seen_in + tuples_in, seen_out + tuples_out)
    return totals


# -- the high-level engine -----------------------------------------------------


class ShardedRun:
    """The result of one :func:`run_sharded` execution.

    Attributes:
        output: The merged output stream (see the module docstring's
            determinism guarantee).
        stats: Per-node flow counters, summed across shards.
        shards: Shard count the run used.
        backend: Backend the run used.
        tuples_per_shard: Source tuples assigned to each shard — the
            skew diagnostic (an empty shard costs only its punctuation
            sweeps).
    """

    def __init__(
        self,
        output: list[StreamTuple],
        stats: dict[str, tuple[int, int]],
        shards: int,
        backend: str,
        tuples_per_shard: list[int],
    ):
        self.output = output
        self.stats = stats
        self.shards = shards
        self.backend = backend
        self.tuples_per_shard = tuples_per_shard

    def __repr__(self):
        return (
            f"ShardedRun({len(self.output)} tuples, shards={self.shards}, "
            f"backend={self.backend!r}, per_shard={self.tuples_per_shard})"
        )


def run_sharded(
    sources: Mapping[str, Sequence[StreamTuple]],
    build: ShardBuilder,
    ticks: Iterable[float],
    key: "str | Callable[[str, StreamTuple], Any]" = "spatial_granule",
    shards: int = 2,
    backend: str = "serial",
    batch_size: int = DEFAULT_BATCH_SIZE,
    order_key: Callable[[StreamTuple], Any] | None = None,
    telemetry: TelemetryCollector | None = None,
    mode: str | None = None,
) -> ShardedRun:
    """Partition, execute and merge one sharded dataflow run.

    Args:
        sources: Source name → timestamp-sorted tuples (fully recorded;
            sharding replays each slice through a fresh pipeline).
        build: Called once per shard with that shard's source slices;
            must wire a *fresh* Fjord (operators are stateful) and return
            ``(fjord, sink)``.
        ticks: Punctuation times, shared by every shard.
        key: Shard key — field name or ``key(source_name, tuple)``.
        shards: Number of independent sub-pipelines.
        backend: One of :data:`BACKENDS`.
        batch_size: Tuples per transport batch (``processes`` backend).
        order_key: Override for the merge order; defaults to the string
            form of the shard key read off each output tuple.
        telemetry: Instrumentation sink; ``None`` uses the process-wide
            default. The partition and the final merge are recorded as
            ``shard_partition`` / ``shard_merge`` trace events, and
            per-shard collector snapshots are absorbed in shard order.
        mode: Execution mode for every shard (one of
            :data:`repro.streams.fjord.MODES`); ``None`` uses the
            process-wide default. All modes merge bit-identically.

    Returns:
        A :class:`ShardedRun`.
    """
    collector = resolve_telemetry(telemetry)
    shard_sources = partition_sources(sources, key, shards)
    if order_key is None:
        if callable(key):
            raise OperatorError(
                "a callable shard key needs an explicit order_key for the "
                "merge (output tuples have no source name to apply it to)"
            )
        order_key = lambda item, _field=key: str(item.get(_field))  # noqa: E731
    tuples_per_shard = [
        sum(len(items) for items in slices.values())
        for slices in shard_sources
    ]
    if collector.enabled:
        collector.event(
            "shard_partition",
            shards=shards,
            backend=backend,
            per_shard=tuples_per_shard,
        )
    builders = [
        (lambda slices=slices: build(slices)) for slices in shard_sources
    ]
    results = run_shard_jobs(
        builders,
        list(ticks),
        backend=backend,
        batch_size=batch_size,
        telemetry=collector,
        mode=mode,
    )
    output = merge_outputs(results, order_key)
    if collector.enabled:
        collector.event("shard_merge", shards=shards, tuples=len(output))
    return ShardedRun(
        output=output,
        stats=merge_stats(results),
        shards=shards,
        backend=backend,
        tuples_per_shard=tuples_per_shard,
    )
