"""Simulation time: durations, the clock, and epoch arithmetic.

All timestamps in the system are float seconds on a single simulation time
axis starting at 0.0. CQL window clauses such as ``[Range By '5 sec']`` and
ESP temporal granules are parsed into :class:`Duration` values by
:func:`parse_duration`.
"""

from __future__ import annotations

import math
import re
from typing import Iterator

from repro.errors import WindowError

#: Multipliers from unit spellings to seconds. The paper's queries use
#: ``sec`` and ``min``; the rest are accepted for convenience.
_UNIT_SECONDS = {
    "ms": 1e-3,
    "msec": 1e-3,
    "millisecond": 1e-3,
    "milliseconds": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}

_DURATION_RE = re.compile(
    r"^\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]+)\s*$"
)


class Duration:
    """A length of time, stored in seconds.

    ``Duration`` is a tiny value type: it supports comparison and arithmetic
    with other durations and with raw numbers of seconds.

    Example:
        >>> Duration.parse("5 sec").seconds
        5.0
        >>> Duration.parse("NOW").is_now
        True
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise WindowError(f"duration must be non-negative, got {seconds}")
        self.seconds = float(seconds)

    @classmethod
    def parse(cls, text: "str | float | Duration") -> "Duration":
        """Parse a duration from CQL-style text (see :func:`parse_duration`)."""
        return parse_duration(text)

    @property
    def is_now(self) -> bool:
        """True for the degenerate ``NOW`` window (zero width)."""
        return self.seconds == 0.0

    def __float__(self) -> float:
        return self.seconds

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Duration):
            return self.seconds == other.seconds
        if isinstance(other, (int, float)):
            return self.seconds == float(other)
        return NotImplemented

    def __lt__(self, other: "Duration | float") -> bool:
        return self.seconds < float(other)

    def __le__(self, other: "Duration | float") -> bool:
        return self.seconds <= float(other)

    def __gt__(self, other: "Duration | float") -> bool:
        return self.seconds > float(other)

    def __ge__(self, other: "Duration | float") -> bool:
        return self.seconds >= float(other)

    def __hash__(self) -> int:
        return hash(self.seconds)

    def __add__(self, other: "Duration | float") -> "Duration":
        return Duration(self.seconds + float(other))

    def __mul__(self, factor: float) -> "Duration":
        return Duration(self.seconds * factor)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        if self.is_now:
            return "Duration(NOW)"
        return f"Duration({self.seconds:g}s)"


def parse_duration(text: "str | float | Duration") -> Duration:
    """Parse a CQL-style duration string into a :class:`Duration`.

    Accepts:

    - the literal ``'NOW'`` (case-insensitive) — a zero-width window,
    - ``'<number> <unit>'`` with units ms/sec/min/hour/day and common
      variants (``'5 sec'``, ``'30 min'``, ``'0.5 sec'``),
    - a bare number (seconds), either as a string or numeric, and
    - an existing :class:`Duration`, returned unchanged.

    Raises:
        WindowError: If the text is not a recognizable duration.
    """
    if isinstance(text, Duration):
        return text
    if isinstance(text, (int, float)):
        return Duration(float(text))
    stripped = text.strip().strip("'\"")
    if stripped.upper() == "NOW":
        return Duration(0.0)
    try:
        return Duration(float(stripped))
    except ValueError:
        pass
    match = _DURATION_RE.match(stripped)
    if not match:
        raise WindowError(f"cannot parse duration {text!r}")
    unit = match.group("unit").lower()
    if unit not in _UNIT_SECONDS:
        raise WindowError(
            f"unknown duration unit {unit!r} in {text!r}; "
            f"expected one of {sorted(set(_UNIT_SECONDS))}"
        )
    return Duration(float(match.group("value")) * _UNIT_SECONDS[unit])


class SimClock:
    """A discrete simulation clock.

    The clock starts at ``start`` and advances in fixed ``period`` steps.
    Receptor simulators poll the world once per tick; the Fjord executor
    uses tick boundaries as time punctuations.

    Args:
        period: Seconds between ticks (e.g. ``0.2`` for the paper's 5 Hz
            RFID polling).
        start: Time of the first tick.

    Example:
        >>> clock = SimClock(period=0.5)
        >>> [round(t, 1) for t in clock.ticks(until=1.5)]
        [0.0, 0.5, 1.0, 1.5]
    """

    def __init__(self, period: float, start: float = 0.0):
        if period <= 0:
            raise WindowError(f"clock period must be positive, got {period}")
        self.period = float(period)
        self.start = float(start)
        self.now = float(start)

    def advance(self) -> float:
        """Advance one tick and return the new time."""
        self.now += self.period
        return self.now

    def ticks(self, until: float) -> Iterator[float]:
        """Yield tick times from ``start`` through ``until`` inclusive.

        The iterator is resilient to float accumulation error: tick ``i``
        is computed as ``start + i * period`` rather than by repeated
        addition.
        """
        count = int(math.floor((until - self.start) / self.period + 1e-9))
        for i in range(count + 1):
            self.now = self.start + i * self.period
            yield self.now

    def tick_count(self, until: float) -> int:
        """Number of ticks produced by :meth:`ticks` for this horizon."""
        return int(math.floor((until - self.start) / self.period + 1e-9)) + 1


def epoch_of(timestamp: float, epoch_length: float, start: float = 0.0) -> int:
    """Return the index of the epoch containing ``timestamp``.

    Epoch ``k`` covers ``[start + k*epoch_length, start + (k+1)*epoch_length)``.
    A small tolerance keeps boundary timestamps in the epoch they were
    generated for, despite float rounding.
    """
    if epoch_length <= 0:
        raise WindowError(f"epoch length must be positive, got {epoch_length}")
    return int(math.floor((timestamp - start) / epoch_length + 1e-9))
