"""Relational operators over streams.

Operators follow a push-based, punctuated protocol. The executor
(:mod:`repro.streams.fjord`) delivers two kinds of events to an operator:

- :meth:`Operator.on_tuple` — a data tuple arrived on an input port;
- :meth:`Operator.on_time` — a *time punctuation*: every tuple with
  timestamp ``<= now`` has been delivered; windowed operators slide and
  emit their results for time ``now``.

Both methods return the (possibly empty) list of output tuples to push
downstream. Stateless operators (filter, map) emit from ``on_tuple``;
windowed operators buffer in ``on_tuple`` and emit from ``on_time``.

This split mirrors the Fjord execution model the paper cites [22]: data is
pushed through the pipeline as it arrives, while window semantics are
driven by punctuations rather than by a global per-window barrier.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.columnar import ColumnBatch
from repro.streams.typedcols import to_list
from repro.streams.tuples import StreamTuple
from repro.streams.windows import BaseWindow, WindowSpec

#: Extracts a grouping key component or aggregate argument from a tuple.
Extractor = Callable[[StreamTuple], Any]


class Operator:
    """Base class for stream operators (see module docstring)."""

    #: Attribute names holding this operator's mutable *data* state —
    #: window contents, pending buffers, running moments — as opposed to
    #: configuration (predicates, thresholds, field names). The default
    #: :meth:`checkpoint`/:meth:`restore` protocol covers exactly these
    #: attributes; config is deliberately excluded so restore targets a
    #: freshly built identical pipeline (lambdas never cross the wire).
    STATE_ATTRS: tuple[str, ...] = ()

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        """Handle one input tuple on ``port``; return output tuples."""
        raise NotImplementedError

    def checkpoint(self) -> "dict[str, Any] | None":
        """Snapshot this operator's data state, or ``None`` if stateless.

        Returns live references, not copies: the caller serializes the
        snapshot synchronously (before the operator runs again), which
        is what makes checkpointing cheap on the hot path. Operators
        whose state is not attribute-shaped override this together with
        :meth:`restore`.
        """
        if not self.STATE_ATTRS:
            return None
        return {name: getattr(self, name) for name in self.STATE_ATTRS}

    def restore(self, state: "Mapping[str, Any] | None") -> None:
        """Install a :meth:`checkpoint` snapshot into this operator.

        The operator must be freshly constructed with the *same
        configuration* as the one that produced the snapshot. Lists and
        dicts are refilled in place so aliases held by the surrounding
        session (e.g. a sink's results list exposed as ``emitted``)
        stay valid.
        """
        if state is None:
            return
        for name, value in state.items():
            current = getattr(self, name, None)
            if isinstance(current, list) and isinstance(value, list):
                current[:] = value
            elif isinstance(current, dict) and isinstance(value, dict):
                current.clear()
                current.update(value)
            else:
                setattr(self, name, value)

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        """Handle a batch of input tuples that arrived on ``port``.

        Semantically identical to calling :meth:`on_tuple` per item and
        concatenating the outputs in input order — which is exactly what
        this default does. Hot operators override it to amortize the
        per-tuple Python call overhead; the executor delivers pending
        input through this method.

        The executor accounts flow counters and telemetry (batch-size
        histograms, per-call latency) by the lengths of the input and
        output sequences, so an override must emit exactly the
        concatenation of the per-tuple outputs — a fast path that drops,
        adds or reorders tuples would skew every counter downstream.
        ``tests/test_observability.py`` pins this equivalence
        differentially for the overriding operators.
        """
        out: list[StreamTuple] = []
        for item in items:
            out.extend(self.on_tuple(item, port))
        return out

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        """Handle a columnar batch that arrived on ``port``.

        Must emit exactly the batch :meth:`on_batch` would emit for
        ``batch.tuples()`` — the same tuples, in the same order — so the
        columnar execution mode stays bit-identical to the row path.
        This default materializes rows and delegates; hot stateless
        operators override it with column kernels that never touch
        per-tuple dicts. The same accounting contract as
        :meth:`on_batch` applies: the executor counts input and output
        lengths of every call.
        """
        return ColumnBatch.from_tuples(self.on_batch(batch.tuples(), port))

    def on_time(self, now: float) -> list[StreamTuple]:
        """Handle a time punctuation; return output tuples for ``now``."""
        return []


class FilterOp(Operator):
    """Keep tuples satisfying a predicate (the WHERE clause / Point filters).

    Args:
        predicate: Callable returning truthy to keep the tuple.

    Example:
        >>> op = FilterOp(lambda t: t["temp"] < 50)
        >>> op.on_tuple(StreamTuple(0, {"temp": 80}))
        []
    """

    def __init__(self, predicate: Callable[[StreamTuple], bool]):
        self._predicate = predicate

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        return [item] if self._predicate(item) else []

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        predicate = self._predicate
        return [item for item in items if predicate(item)]

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        mask_fn = getattr(self._predicate, "mask", None)
        if mask_fn is not None:
            return batch.where(mask_fn(batch))
        predicate = self._predicate
        return batch.where([predicate(item) for item in batch.tuples()])


class MapOp(Operator):
    """Transform each tuple (projection, field conversion, annotation).

    Args:
        fn: Callable mapping a tuple to a tuple, a list of tuples, or
            ``None`` to drop it.
    """

    def __init__(self, fn: Callable[[StreamTuple], "StreamTuple | list[StreamTuple] | None"]):
        self._fn = fn

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        out = self._fn(item)
        if out is None:
            return []
        if isinstance(out, StreamTuple):
            return [out]
        return list(out)

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        fn = self._fn
        out: list[StreamTuple] = []
        for item in items:
            result = fn(item)
            if result is None:
                continue
            if isinstance(result, StreamTuple):
                out.append(result)
            else:
                out.extend(result)
        return out

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        columnar = getattr(self._fn, "columnar", None)
        if columnar is not None:
            return columnar(batch)
        return ColumnBatch.from_tuples(self.on_batch(batch.tuples(), port))


class UnionOp(Operator):
    """Merge any number of input streams into one (bag union).

    Optionally re-labels the output stream name so downstream operators see
    a single logical stream, as the ESP processor does when feeding the
    union of per-reader Smooth outputs into Arbitrate.
    """

    def __init__(self, output_stream: str | None = None):
        self._output_stream = output_stream

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if self._output_stream is None:
            return [item]
        return [item.derive(stream=self._output_stream)]

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        if self._output_stream is None:
            return list(items)
        stream = self._output_stream
        return [item.derive(stream=stream) for item in items]

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        if self._output_stream is None:
            return batch
        return batch.with_stream(self._output_stream)


class StaticJoinOp(Operator):
    """Join the stream against a static relation (e.g. an inventory list).

    This implements the paper's "static table joins (e.g., for inventory
    lookups)" extensibility point (§4.3.1) and the digital-home Point stage
    that keeps only expected tag IDs (§6.1).

    Args:
        table: The static relation, as a sequence of field mappings.
        on: Predicate over ``(stream_tuple, table_row)`` deciding a match.
        how: ``"inner"`` emits one enriched tuple per matching row (table
            fields merged in, stream fields win on collision); ``"semi"``
            emits the stream tuple unchanged if any row matches; ``"anti"``
            emits it if no row matches.
    """

    def __init__(
        self,
        table: Sequence[Mapping[str, Any]],
        on: Callable[[StreamTuple, Mapping[str, Any]], bool],
        how: str = "inner",
    ):
        if how not in ("inner", "semi", "anti"):
            raise OperatorError(f"unknown join mode {how!r}")
        self._table = [dict(row) for row in table]
        self._on = on
        self._how = how

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        matches = [row for row in self._table if self._on(item, row)]
        if self._how == "semi":
            return [item] if matches else []
        if self._how == "anti":
            return [] if matches else [item]
        return [
            item.derive(values={**row, **item.as_dict()}) for row in matches
        ]

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        table = self._table
        on = self._on
        how = self._how
        out: list[StreamTuple] = []
        for item in items:
            matches = [row for row in table if on(item, row)]
            if how == "semi":
                if matches:
                    out.append(item)
            elif how == "anti":
                if not matches:
                    out.append(item)
            else:
                out.extend(
                    item.derive(values={**row, **item.as_dict()})
                    for row in matches
                )
        return out


class GroupKey:
    """A named component of a grouping key.

    Args:
        name: Output field name for this key component.
        extractor: Callable producing the component from a tuple; defaults
            to reading the field called ``name``.
    """

    __slots__ = ("name", "extractor", "field")

    def __init__(self, name: str, extractor: Extractor | None = None):
        self.name = name
        self.extractor = extractor or (lambda t, _n=name: t[_n])
        # Column-kernel fast path: when the extractor is the default
        # field read, the key component can be pulled straight from the
        # batch's column without materializing tuples.
        self.field: str | None = None if extractor is not None else name

    def __repr__(self) -> str:
        return f"GroupKey({self.name})"


class WindowedGroupByOp(Operator):
    """Windowed GROUP BY with aggregates and an optional HAVING filter.

    This single operator covers the paper's Queries 1, 2, 3 and 5: it
    maintains one window per group, slides all windows on each punctuation
    and emits one result tuple per non-empty group.

    Args:
        window: Window specification applied per group.
        keys: Grouping key components; empty for a global aggregate.
        aggregates: Aggregate calls evaluated over each group's window.
        having: Optional filter over emitted rows. It is called as
            ``having(row, all_rows)`` where ``all_rows`` is every row
            produced at this instant — giving it visibility across groups,
            which is exactly what Query 3's ``>= ALL (...)`` correlated
            subquery needs.
        emit_every: Emit results only on punctuations that are multiples of
            this period (seconds); ``None`` emits on every punctuation.
            This models a window *slide* larger than the tick.
        output_stream: Stream name for emitted tuples.

    Emitted tuples carry the key component fields plus one field per
    aggregate (named by ``AggregateSpec.output``), timestamped at the
    punctuation time.
    """

    def __init__(
        self,
        window: WindowSpec,
        keys: Sequence[GroupKey] = (),
        aggregates: Sequence[AggregateSpec] = (),
        having: Callable[[StreamTuple, list[StreamTuple]], bool] | None = None,
        emit_every: float | None = None,
        output_stream: str = "",
    ):
        if not aggregates and not keys:
            raise OperatorError("group-by needs at least one key or aggregate")
        if emit_every is not None and emit_every <= 0:
            raise OperatorError(f"emit_every must be positive, got {emit_every}")
        self._window_spec = window
        self._keys = list(keys)
        self._aggregates = list(aggregates)
        self._having = having
        self._emit_every = emit_every
        self._output_stream = output_stream
        self._windows: dict[tuple, BaseWindow] = {}

    STATE_ATTRS = ("_windows",)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        key = tuple(k.extractor(item) for k in self._keys)
        window = self._windows.get(key)
        if window is None:
            window = self._window_spec.make_window()
            self._windows[key] = window
        window.insert(item)
        return []

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        extractors = [k.extractor for k in self._keys]
        windows = self._windows
        for item in items:
            key = tuple(extract(item) for extract in extractors)
            window = windows.get(key)
            if window is None:
                window = self._window_spec.make_window()
                windows[key] = window
            window.insert(item)
        return []

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        # Windows buffer whole tuples, so rows must materialize either
        # way; the columnar win here is hoisting key extraction to a
        # per-column read when every key is a plain field present in
        # all rows. A batch that was never encoded stays row-wise (its
        # cached tuples are free; encoding just to read keys is not),
        # and partial or absent key columns fall back to the row
        # extractors so SchemaError ordering matches the row path.
        fields = [k.field for k in self._keys]
        if batch.is_encoded and all(
            f is not None and batch.has_full_column(f) for f in fields
        ):
            items = batch.tuples()
            # to_list: key components must be native Python values
            # (typed columns would otherwise leak numpy scalars into
            # the emitted group-key fields).
            cols = [to_list(batch.columns[f]) for f in fields]  # type: ignore[index]
            windows = self._windows
            spec = self._window_spec
            for i, item in enumerate(items):
                key = tuple(col[i] for col in cols)
                window = windows.get(key)
                if window is None:
                    window = spec.make_window()
                    windows[key] = window
                window.insert(item)
        else:
            self.on_batch(batch.tuples(), port)
        return ColumnBatch.empty()

    def on_time(self, now: float) -> list[StreamTuple]:
        if self._emit_every is not None:
            # Emit only on slide boundaries (within float tolerance).
            phase = now / self._emit_every
            if abs(phase - round(phase)) > 1e-6:
                for window in self._windows.values():
                    window.advance(now)
                return []
        rows: list[StreamTuple] = []
        empty_keys = []
        # Emit groups in component-wise sorted key order, not insertion
        # order: the output order must be a function of the data alone so
        # sharded execution can reproduce it (repro.streams.shard).
        for key, window in sorted(
            self._windows.items(),
            key=lambda kv: tuple(str(c) for c in kv[0]),
        ):
            window.advance(now)
            contents = window.contents()
            if not contents:
                empty_keys.append(key)
                continue
            values: dict[str, Any] = {
                k.name: component for k, component in zip(self._keys, key)
            }
            for spec in self._aggregates:
                values[spec.output] = spec.evaluate(contents)
            rows.append(StreamTuple(now, values, self._output_stream))
        for key in empty_keys:
            del self._windows[key]
        if self._having is not None:
            rows = [row for row in rows if self._having(row, rows)]
        return rows


class WindowJoinOp(Operator):
    """Join two windowed streams, evaluated at each punctuation.

    Implements CQL's relation-at-time-t join semantics: at each punctuation
    the operator forms the cross product of the two windows' contents,
    keeps pairs passing ``predicate`` and emits one combined tuple per pair
    (right fields merged under left fields).

    Args:
        left: Window spec for input port 0.
        right: Window spec for input port 1.
        predicate: Callable over ``(left_tuple, right_tuple)``.
        combine: Optional callable producing the output tuple from a
            matching pair; the default merges field dicts (left wins).
        output_stream: Stream name for emitted tuples.
    """

    def __init__(
        self,
        left: WindowSpec,
        right: WindowSpec,
        predicate: Callable[[StreamTuple, StreamTuple], bool],
        combine: Callable[[StreamTuple, StreamTuple], StreamTuple] | None = None,
        output_stream: str = "",
    ):
        self._left = left.make_window()
        self._right = right.make_window()
        self._predicate = predicate
        self._combine = combine
        self._output_stream = output_stream

    STATE_ATTRS = ("_left", "_right")

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if port == 0:
            self._left.insert(item)
        elif port == 1:
            self._right.insert(item)
        else:
            raise OperatorError(f"join has two ports, got port {port}")
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        self._left.advance(now)
        self._right.advance(now)
        out: list[StreamTuple] = []
        for lhs in self._left:
            for rhs in self._right:
                if not self._predicate(lhs, rhs):
                    continue
                if self._combine is not None:
                    out.append(self._combine(lhs, rhs))
                else:
                    merged = {**rhs.as_dict(), **lhs.as_dict()}
                    out.append(StreamTuple(now, merged, self._output_stream))
        return out


class SinkOp(Operator):
    """Terminal operator collecting every tuple it receives.

    Attributes:
        results: The collected tuples, in arrival order.
    """

    STATE_ATTRS = ("results",)

    def __init__(self, callback: Callable[[StreamTuple], None] | None = None):
        self.results: list[StreamTuple] = []
        self._callback = callback

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self.results.append(item)
        if self._callback is not None:
            self._callback(item)
        return []

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        self.results.extend(items)
        if self._callback is not None:
            for item in items:
                self._callback(item)
        return []

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        # The sink is the row/column boundary: collected results are
        # always row tuples so downstream consumers (merge, traceio,
        # session callbacks) never see batch objects.
        self.on_batch(batch.tuples(), port)
        return ColumnBatch.empty()


class ChainOp(Operator):
    """Run several operators as one sequential mini-pipeline.

    Useful for packaging an ESP stage built from multiple primitive
    operators as a single DAG node.

    Args:
        stages: Operators applied in order. Each stage's ``on_tuple``
            outputs feed the next stage; at punctuations, each stage's
            ``on_time`` outputs are delivered to the next stage *before*
            that stage's own ``on_time`` fires, preserving same-instant
            pipelining.
    """

    def __init__(self, stages: Sequence[Operator]):
        if not stages:
            raise OperatorError("ChainOp needs at least one stage")
        self._stages = list(stages)

    def checkpoint(self) -> "dict[str, Any] | None":
        states = [stage.checkpoint() for stage in self._stages]
        if all(state is None for state in states):
            return None
        return {"stages": states}

    def restore(self, state: "Mapping[str, Any] | None") -> None:
        if state is None:
            return
        for stage, sub in zip(self._stages, state["stages"]):
            stage.restore(sub)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        pending = [item]
        for stage in self._stages:
            next_pending: list[StreamTuple] = []
            for tup in pending:
                next_pending.extend(stage.on_tuple(tup, port))
            pending = next_pending
            port = 0  # only the first stage sees the original port
            if not pending:
                return []
        return pending

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        # No up-front copy: the input sequence is handed to the first
        # stage as-is, and stages that pass everything through (every
        # stage returns a fresh list per its contract) already isolate
        # us from the caller's sequence. Only if *every* stage returned
        # the input object unchanged would aliasing matter, so a final
        # defensive copy covers that one case.
        pending: Sequence[StreamTuple] = items
        for stage in self._stages:
            pending = stage.on_batch(pending, port)
            port = 0  # only the first stage sees the original port
            if not pending:
                return []
        if pending is items:
            return list(pending)
        return pending if isinstance(pending, list) else list(pending)

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        # Columnar stages short-circuit structurally: a stage that
        # rejects nothing returns its input batch object (FilterOp via
        # ``where`` on an all-truthy mask, UnionOp without a relabel),
        # so an all-pass chain performs zero copies end to end. The
        # regression test in tests/test_columnar_batch.py pins this
        # with a counting ColumnBatch subclass.
        pending = batch
        for stage in self._stages:
            if not len(pending):
                return pending
            pending = stage.on_column_batch(pending, port)
            port = 0  # only the first stage sees the original port
        return pending

    def on_time(self, now: float) -> list[StreamTuple]:
        carried: list[StreamTuple] = []
        for stage in self._stages:
            produced = stage.on_batch(carried, 0) if carried else []
            produced.extend(stage.on_time(now))
            carried = produced
        return carried


def run_operator(
    op: Operator,
    items: Iterable[StreamTuple],
    ticks: Iterable[float],
) -> list[StreamTuple]:
    """Drive a single operator over pre-sorted tuples and punctuations.

    A convenience used heavily by unit tests: tuples with timestamp
    ``<= tick`` are delivered before that tick's punctuation.

    Args:
        op: The operator under test.
        items: Tuples sorted by non-decreasing timestamp.
        ticks: Punctuation times, ascending.

    Returns:
        All output tuples, in emission order.
    """
    out: list[StreamTuple] = []
    pending = sorted(items, key=lambda t: t.timestamp)
    index = 0
    for tick in ticks:
        start = index
        while index < len(pending) and pending[index].timestamp <= tick + 1e-9:
            index += 1
        if index > start:
            out.extend(op.on_batch(pending[start:index]))
        out.extend(op.on_time(tick))
    return out
