"""Typed (numpy-backed) column storage for :class:`ColumnBatch`.

PR 5 landed the columnar batch representation on parallel Python
lists.  This module is the next rung on the tuples/sec ladder: at
encode time a column whose cells are *homogeneously* ``int`` or
``float`` is backed by a numpy array (``int64`` / ``float64``), so the
hot kernels — ``FieldCompare.mask``, batch slicing, the window
aggregate arguments — run as single C-level array operations instead
of per-element Python loops.

Lists remain the universal fallback.  A column stays a plain list when

- numpy is not installed (or ``REPRO_NO_NUMPY=1`` is set),
- the column is shorter than the ``min_rows`` threshold (tiny batches
  would pay more in conversion than they win in vectorization),
- the cells mix types (``int`` + ``float``), because decoding must
  return *exactly* the objects that were encoded — ints stay ints,
- any cell is ``MISSING``/``None``/non-numeric (``bool`` is
  deliberately not ``int`` here), or
- an ``int`` cell falls outside the exact ``int64`` range.

Every decision is observable via :func:`storage_stats`.  The counters
are module-global and *deliberately not* part of per-run telemetry
snapshots: snapshots and trace events are pinned byte-identical across
execution modes and across the numpy/no-numpy CI legs
(``tests/test_telemetry.py::TestColumnarAccounting``), and typed
storage is exactly the kind of environment-dependent detail that must
not leak into them.

**Exactness contract.** Typed storage is invisible to results:
``arr.tolist()`` round-trips ``int64``/``float64`` cells bit-exactly
(NaN included), so ``row ≡ columnar ≡ fused`` holds with and without
numpy.  Kernels only vectorize operations whose IEEE-754 result is
identical to the sequential Python loop; anything else (notably float
summation, where numpy's pairwise summation differs from sequential
accumulation) stays on the loop path.  See ``docs/columnar.md``.
"""

from __future__ import annotations

import os
from typing import Any, Iterator, Sequence

__all__ = [
    "numpy_available",
    "typed_columns_enabled",
    "set_typed_columns",
    "typed_config",
    "typed_from_values",
    "is_typed",
    "to_list",
    "take_cells",
    "concat_cells",
    "constant_cells",
    "storage_stats",
    "reset_storage_stats",
    "INT64_MIN",
    "INT64_MAX",
    "EXACT_INT_BOUND",
    "DEFAULT_MIN_ROWS",
]

# numpy is a *performance* dependency, never a correctness one: the CI
# matrix runs the full suite with numpy uninstalled.  REPRO_NO_NUMPY=1
# forces the pure-list fallback even when numpy is importable, so the
# no-numpy code paths stay testable in a normal environment.
if os.environ.get("REPRO_NO_NUMPY"):
    np = None
else:  # pragma: no branch
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None  # type: ignore[assignment]

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

# Largest magnitude at which every int is exactly representable as a
# float64 — the bound under which int sums/comparisons can be
# vectorized with results bit-identical to the Python loop.
EXACT_INT_BOUND = 2**53

# Columns shorter than this stay lists: converting a 3-row column to
# an array costs more than the vectorized kernel saves.
DEFAULT_MIN_ROWS = 4

_enabled: bool = np is not None
_min_rows: int = DEFAULT_MIN_ROWS

_stats: dict[str, int] = {}


def numpy_available() -> bool:
    """True when the numpy backend is importable and not disabled."""
    return np is not None


def typed_columns_enabled() -> bool:
    """True when encode may back homogeneous numeric columns with arrays."""
    return _enabled and np is not None


def typed_config() -> tuple[bool, int]:
    """Current ``(enabled, min_rows)`` configuration."""
    return _enabled, _min_rows


def set_typed_columns(
    enabled: bool | None = None, min_rows: int | None = None
) -> tuple[bool, int]:
    """Reconfigure typed storage; returns the *previous* configuration.

    ``enabled=False`` forces the pure-list fallback (what a no-numpy
    environment gets); ``min_rows`` tunes the conversion threshold.
    Passing ``None`` leaves a setting unchanged.  Already-encoded
    batches are unaffected — this only steers future encodes.
    """
    global _enabled, _min_rows
    previous = (_enabled, _min_rows)
    if enabled is not None:
        _enabled = bool(enabled)
    if min_rows is not None:
        if min_rows < 0:
            raise ValueError("min_rows must be >= 0")
        _min_rows = min_rows
    return previous


def _count(key: str, by: int = 1) -> None:
    _stats[key] = _stats.get(key, 0) + by


def storage_stats() -> dict[str, int]:
    """Copy of the module-global storage decision counters.

    Keys: ``typed_int`` / ``typed_float`` (columns backed by arrays),
    ``list_mixed`` / ``list_missing`` / ``list_object`` /
    ``list_overflow`` / ``list_small`` (fallback reasons), and
    ``typed_cells`` / ``list_cells`` (row totals per storage class).
    """
    return dict(_stats)


def reset_storage_stats() -> None:
    _stats.clear()


def is_typed(column: Any) -> bool:
    """True when ``column`` is a numpy-backed (typed) column."""
    return np is not None and isinstance(column, np.ndarray)


def typed_from_values(values: Sequence[Any]) -> Any | None:
    """Return a typed array for ``values``, or ``None`` to keep a list.

    Detection is strict so decoding preserves dtypes exactly:
    all-``int`` (within int64, ``bool`` excluded) → ``int64``;
    all-``float`` → ``float64`` (NaN preserved); anything else —
    mixed int/float, ``MISSING``, ``None``, objects — stays a list.
    """
    if not _enabled or np is None:
        return None
    n = len(values)
    if n < _min_rows:
        _count("list_small")
        _count("list_cells", n)
        return None
    kinds = set(map(type, values))
    if kinds == {int}:
        if min(values) < INT64_MIN or max(values) > INT64_MAX:
            _count("list_overflow")
            _count("list_cells", n)
            return None
        _count("typed_int")
        _count("typed_cells", n)
        return np.array(values, dtype=np.int64)
    if kinds == {float}:
        _count("typed_float")
        _count("typed_cells", n)
        return np.array(values, dtype=np.float64)
    if kinds <= {int, float}:
        _count("list_mixed")
    elif any(type(k).__name__ == "_Missing" for k in _iter_sample(values, kinds)):
        _count("list_missing")
    else:
        _count("list_object")
    _count("list_cells", n)
    return None


def _iter_sample(values: Sequence[Any], kinds: set) -> Iterator[Any]:
    # Classify the fallback without another full scan: one exemplar
    # per cell type is enough to spot the MISSING sentinel.
    seen = set()
    for v in values:
        t = type(v)
        if t not in seen:
            seen.add(t)
            yield v
        if len(seen) == len(kinds):
            return


def to_list(column: Any) -> list:
    """Materialize a column as a plain Python list, exactly.

    ``ndarray.tolist()`` yields native ``int``/``float`` objects that
    are bit-identical to the encoded cells (NaN included), so decode
    is lossless regardless of storage class.
    """
    if is_typed(column):
        return column.tolist()
    return column if isinstance(column, list) else list(column)


def take_cells(column: Any, indices: Sequence[int]) -> Any:
    """Row-subset a column; typed columns use fancy indexing."""
    if is_typed(column):
        return column[indices]
    return [column[i] for i in indices]


def concat_cells(parts: Sequence[Any]) -> Any | None:
    """Concatenate same-field columns from several batches.

    Returns a typed array when every part is typed with one dtype
    (the common case when all parts saw the same schema), otherwise
    ``None`` — the caller falls back to list concatenation.
    """
    if np is None or not parts:
        return None
    if not all(is_typed(p) for p in parts):
        return None
    if len({p.dtype for p in parts}) != 1:
        return None
    return np.concatenate(parts)


def constant_cells(value: Any, n: int) -> Any:
    """Column of ``n`` copies of ``value``; typed when numeric.

    Used by ``ColumnBatch.with_columns`` so that constant numeric
    columns added mid-chain (``AddFields``) are born typed and the
    downstream compares vectorize without a re-encode.
    """
    if _enabled and np is not None and n >= _min_rows and not isinstance(value, bool):
        if type(value) is int and INT64_MIN <= value <= INT64_MAX:
            _count("typed_int")
            _count("typed_cells", n)
            return np.full(n, value, dtype=np.int64)
        if type(value) is float:
            _count("typed_float")
            _count("typed_cells", n)
            return np.full(n, value, dtype=np.float64)
    return [value] * n
