"""Runtime telemetry: per-operator metrics, gauges and trace events.

Production stream cleaners instrument every processing step; this module
is that layer for the ESP engine. It answers, for any run, the questions
the end-result metrics (detection accuracy, epoch yield) cannot: where
did the time go, where do tuples pile up, which stage collapses the data
volume, and what did the engine *do* (in event order) while doing it.

Three design rules keep the instrumentation honest:

- **Zero-dependency and low-overhead.** The pluggable
  :class:`TelemetryCollector` base class is itself the no-op default;
  the executor consults a single ``enabled`` flag and performs no clock
  reads, allocations or method calls on the uninstrumented hot path.
  The overhead budget (≤ 5 % on the sharding benchmark's throughput) is
  pinned by ``benchmarks/test_bench_telemetry.py``.
- **Integer arithmetic everywhere.** Busy time is accumulated in
  nanoseconds (``time.perf_counter_ns``) and histograms hold integer
  bucket counts, so merging per-shard snapshots is *associative* —
  float summation order can never make two merge trees disagree. The
  property harness in ``tests/test_telemetry.py`` pins associativity.
- **Deterministic trace events.** Events carry simulation time, node
  names and tuple counts — never wall-clock readings — so a recorded
  event log is a pure function of the input data and can be pinned as a
  golden artifact (``tests/golden/rfid_shelf_trace_events.jsonl``).
  Wall-clock durations live only in the histograms and busy counters.

**Execution-mode independence.** The executor accounts every drain by
the lengths of its input run and output batch, and the columnar/fused
modes (:mod:`repro.streams.columnar`, :data:`repro.streams.fjord.MODES`)
partition pending input into the *same* maximal same-port runs as the
row path — so per-operator tuple totals, batch counts, batch-size
histograms, punctuation counts and trace events are identical across
``row`` and ``columnar`` execution of the same data; only wall-clock
busy-ns differ. (``fused`` collapses nodes, so its per-node *telemetry*
is keyed by fused node names, while :meth:`repro.streams.fjord.Fjord.stats`
still reports exact per-stage flow counters.) The columnar-accounting
test in ``tests/test_telemetry.py`` pins this exactness.

Snapshots are plain JSON-friendly dicts (see :func:`empty_snapshot` for
the schema), which is also what crosses the process boundary from forked
shard workers back to the parent's collector.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ReproError

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Histogram",
    "InMemoryCollector",
    "IngestTrace",
    "LATENCY_BUCKETS_NS",
    "NULL_COLLECTOR",
    "SPAN_PHASES",
    "TelemetryCollector",
    "default_telemetry",
    "empty_snapshot",
    "format_table",
    "merge_snapshots",
    "resolve_telemetry",
    "set_default_telemetry",
]

#: Fixed latency bucket upper edges, in nanoseconds: 1-2-5 decades from
#: 1 µs to 10 s. Fixed (rather than adaptive) edges are what make
#: per-shard histogram merges exact — every collector bins identically.
LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    mantissa * 10**exponent
    for exponent in range(3, 10)  # 1 µs .. 10 s
    for mantissa in (1, 2, 5)
)

#: Fixed batch-size bucket upper edges: powers of two up to 64 Ki tuples.
BATCH_SIZE_BUCKETS: tuple[int, ...] = tuple(2**i for i in range(17))


class Histogram:
    """A fixed-bucket histogram with exact, associative merges.

    Bucket ``i`` counts values ``v`` with ``edges[i-1] < v <= edges[i]``
    (the first bucket has no lower bound); one extra overflow bucket
    counts values above the last edge. Only integer counts are stored,
    so merging histograms with identical edges is exact.

    Args:
        edges: Ascending bucket upper edges.
        counts: Optional pre-existing counts (``len(edges) + 1`` entries,
            the last being the overflow bucket).
    """

    __slots__ = ("edges", "counts", "total")

    def __init__(
        self,
        edges: Sequence[int],
        counts: Sequence[int] | None = None,
    ):
        self.edges = tuple(edges)
        if any(a >= b for a, b in zip(self.edges, self.edges[1:])):
            raise ReproError(f"histogram edges must ascend: {edges}")
        if counts is None:
            self.counts = [0] * (len(self.edges) + 1)
        else:
            if len(counts) != len(self.edges) + 1:
                raise ReproError(
                    f"expected {len(self.edges) + 1} counts "
                    f"(one per bucket plus overflow), got {len(counts)}"
                )
            self.counts = [int(c) for c in counts]
        self.total = sum(self.counts)

    def record(self, value: float) -> None:
        """Count one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s counts into this histogram (same edges only)."""
        if other.edges != self.edges:
            raise ReproError(
                "cannot merge histograms with different bucket edges"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total

    def percentile(self, fraction: float) -> float:
        """Upper edge of the bucket containing the given quantile.

        Returns 0 for an empty histogram and ``inf`` when the quantile
        falls in the overflow bucket — a sentinel loud enough that an
        undersized last edge cannot be mistaken for a measurement.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"fraction must be in [0, 1], got {fraction}")
        if self.total == 0:
            return 0.0
        rank = fraction * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if index == len(self.edges):
                    return float("inf")
                return float(self.edges[index])
        return float("inf")  # pragma: no cover - loop always returns

    def __repr__(self) -> str:
        return f"Histogram(total={self.total}, buckets={len(self.counts)})"


# -- ingest-to-emit span correlation ------------------------------------------

#: The contiguous wall-clock phases an ingested tuple passes through on
#: its way from wire arrival to cleaned emission. Phases share their
#: boundary instants, so per-phase durations sum *exactly* (integer
#: nanoseconds) to the end-to-end figure.
SPAN_PHASES: tuple[str, ...] = ("queue", "reorder", "session", "sweep")


class IngestTrace:
    """Correlation state for one ingested tuple's wire-to-emit journey.

    Created by the ingestion gateway when it parses a data frame (the
    *ingest* instant), stamped at every later phase boundary, and
    finalized by the Fjord session once the punctuation sweep that
    consumed the tuple completes. The four phases are contiguous:

    - ``queue``:   frame parsed → taken from the bounded ingress queue
    - ``reorder``: taken → released by the reorder buffer in order
    - ``session``: released/pushed → injected at its punctuation tick
    - ``sweep``:   injected → the tick's sweep (and thus every emission
      it produced) completed

    All stamps are monotonic :func:`clock_ns` readings; only durations
    ever leave this object, and they land in span histograms and the
    span log — never in the deterministic trace-event stream.
    """

    __slots__ = (
        "ingest_id", "source", "sim_ts",
        "t_ingest", "t_queued", "t_released", "t_injected",
        "ctx",
    )

    def __init__(self, ingest_id: int, source: str, sim_ts: float):
        self.ingest_id = ingest_id
        self.source = source
        self.sim_ts = sim_ts
        self.t_ingest = time.perf_counter_ns()
        self.t_queued = self.t_ingest
        self.t_released = self.t_ingest
        self.t_injected = self.t_ingest
        #: Cluster trace context: the ``trace`` mapping a tracing router
        #: stamped onto the forwarded data frame (``None`` off-cluster).
        #: When set, the owning session hands the finished trace to its
        #: ``span_sink`` so the hop record can ship back upstream.
        self.ctx: "dict[str, Any] | None" = None


# -- snapshot schema -----------------------------------------------------------


def empty_snapshot() -> dict[str, Any]:
    """The identity element of :func:`merge_snapshots`.

    Schema::

        {
          "operators": {name: {
              "tuples_in", "tuples_out", "batches", "punctuations",
              "busy_ns",                    # ints, summed on merge
              "latency_ns", "batch_sizes",  # histogram counts, summed
              "max_queue_depth",            # int, max'ed on merge
          }},
          "sources": {name: {
              "tuples",                     # int, summed
              "max_watermark_lag",          # float seconds, max'ed
          }},
          "counters": {"ticks", "runs", "shards_merged"},  # ints, summed
          "events": [ {"seq", "kind", ...}, ... ],         # concatenated
          "spans": {name: {
              "count", "total_ns",          # ints, summed on merge
              "latency_ns",                 # histogram counts, summed
          }},
          "span_log": [ {"seq", "kind": "span", ...}, ... ],  # concat
        }
    """
    return {
        "operators": {},
        "sources": {},
        "counters": {},
        "events": [],
        "spans": {},
        "span_log": [],
    }


def _empty_operator_entry() -> dict[str, Any]:
    return {
        "tuples_in": 0,
        "tuples_out": 0,
        "batches": 0,
        "punctuations": 0,
        "busy_ns": 0,
        "latency_ns": [0] * (len(LATENCY_BUCKETS_NS) + 1),
        "batch_sizes": [0] * (len(BATCH_SIZE_BUCKETS) + 1),
        "max_queue_depth": 0,
    }


_SUMMED_OP_FIELDS = (
    "tuples_in", "tuples_out", "batches", "punctuations", "busy_ns",
)


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Merge collector snapshots into one (associative, pure).

    Counters and histogram buckets are summed, gauges (queue depth,
    watermark lag) are max'ed, and event lists are concatenated in
    argument order and re-sequenced. Because every summed quantity is an
    integer, any merge tree over the same snapshots yields the identical
    result — the property the sharded engine's deterministic aggregation
    relies on.
    """
    out = empty_snapshot()
    for snapshot in snapshots:
        for name, entry in snapshot.get("operators", {}).items():
            target = out["operators"].setdefault(
                name, _empty_operator_entry()
            )
            for field in _SUMMED_OP_FIELDS:
                target[field] += entry[field]
            for field in ("latency_ns", "batch_sizes"):
                counts = entry[field]
                merged = target[field]
                for index, count in enumerate(counts):
                    merged[index] += count
            target["max_queue_depth"] = max(
                target["max_queue_depth"], entry["max_queue_depth"]
            )
        for name, entry in snapshot.get("sources", {}).items():
            target = out["sources"].setdefault(
                name, {"tuples": 0, "max_watermark_lag": 0.0}
            )
            target["tuples"] += entry["tuples"]
            target["max_watermark_lag"] = max(
                target["max_watermark_lag"], entry["max_watermark_lag"]
            )
        for key, value in snapshot.get("counters", {}).items():
            out["counters"][key] = out["counters"].get(key, 0) + value
        out["events"].extend(
            dict(event) for event in snapshot.get("events", [])
        )
        for name, entry in snapshot.get("spans", {}).items():
            target = out["spans"].setdefault(
                name,
                {
                    "count": 0,
                    "total_ns": 0,
                    "latency_ns": [0] * (len(LATENCY_BUCKETS_NS) + 1),
                },
            )
            target["count"] += entry["count"]
            target["total_ns"] += entry["total_ns"]
            merged = target["latency_ns"]
            for index, count in enumerate(entry["latency_ns"]):
                merged[index] += count
        out["span_log"].extend(
            dict(span) for span in snapshot.get("span_log", [])
        )
    for seq, event in enumerate(out["events"]):
        event["seq"] = seq
    for seq, span in enumerate(out["span_log"]):
        span["seq"] = seq
    return out


# -- collectors ----------------------------------------------------------------


class TelemetryCollector:
    """Pluggable instrumentation sink; this base class is the no-op.

    The executor calls these hooks on every batch drain, punctuation
    sweep and tick boundary — but only after checking :attr:`enabled`,
    so the base class's empty bodies are never on the hot path. Custom
    collectors (exporters to a metrics daemon, samplers, ring buffers)
    subclass this and set ``enabled = True``.
    """

    #: When False the executor skips clock reads and sampling entirely.
    enabled: bool = False

    def record_batch(
        self, name: str, n_in: int, n_out: int, elapsed_ns: int
    ) -> None:
        """One ``on_batch`` call on operator ``name`` finished."""

    def record_punctuation(
        self, name: str, n_out: int, elapsed_ns: int
    ) -> None:
        """One ``on_time`` call on operator ``name`` finished."""

    def sample_queue_depth(self, name: str, depth: int) -> None:
        """Pending-input depth of ``name`` observed at a tick boundary."""

    def sample_watermark(self, source: str, lag: float) -> None:
        """Source's watermark lag (tick time minus newest injected
        timestamp) observed at a tick boundary."""

    def count_source(self, source: str, n: int = 1) -> None:
        """``n`` tuples were injected from ``source``."""

    def count_tick(self) -> None:
        """One punctuation sweep completed."""

    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to the free-form counter ``key``.

        Free-form counters land in the snapshot's ``"counters"`` mapping
        next to the executor's built-ins (``ticks``, ...) and merge by
        summation like everything else there. Subsystems outside the
        executor (the ingestion gateway's drop accounting, for example)
        use namespaced keys such as ``net.<source>.dropped``.
        """

    def event(self, kind: str, **fields: Any) -> None:
        """Append a structured trace event (deterministic fields only)."""

    def record_span(self, name: str, duration_ns: int) -> None:
        """One wall-clock span of ``duration_ns`` completed under
        ``name`` (e.g. ``ingest.queue``). Spans aggregate into per-name
        latency histograms plus exact count/total accumulators, so
        per-phase totals sum to the end-to-end total by construction."""

    def span(self, **fields: Any) -> None:
        """Append one entry to the span log.

        Span-log entries carry wall-clock durations, so they live in a
        channel separate from the deterministic trace events; writers
        stamp them ``kind="span"`` (or ``"span_dropped"`` for tuples
        shed before emission) for JSONL interchange via
        :mod:`repro.streams.traceio`.
        """

    def spawn(self) -> "TelemetryCollector":
        """A fresh same-kind collector for an isolated unit of work
        (one shard); its snapshot is later passed to :meth:`absorb`."""
        return self

    def absorb(
        self,
        snapshot: Mapping[str, Any],
        shard: int | None = None,
        node: str | None = None,
    ) -> None:
        """Merge a spawned collector's snapshot back into this one.

        ``shard`` tags the snapshot's events with a shard index (the
        batch engine); ``node`` prefixes its counters, sources and span
        names with a worker label (the cluster rollup) so per-worker
        accounting stays distinguishable after the merge while operator
        metrics still aggregate into one cluster-wide stage rollup.
        """

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of everything collected (see
        :func:`empty_snapshot` for the schema)."""
        return empty_snapshot()


#: The shared no-op collector (stateless, so one instance serves all).
NULL_COLLECTOR = TelemetryCollector()


class _OpMetrics:
    """Mutable per-operator accumulators (one per DAG node)."""

    __slots__ = (
        "tuples_in", "tuples_out", "batches", "punctuations", "busy_ns",
        "latency", "batch_sizes", "max_queue_depth",
    )

    def __init__(self) -> None:
        self.tuples_in = 0
        self.tuples_out = 0
        self.batches = 0
        self.punctuations = 0
        self.busy_ns = 0
        self.latency = Histogram(LATENCY_BUCKETS_NS)
        self.batch_sizes = Histogram(BATCH_SIZE_BUCKETS)
        self.max_queue_depth = 0


class _SpanMetrics:
    """Mutable per-span-name accumulators (count, total, histogram)."""

    __slots__ = ("count", "total_ns", "latency")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.latency = Histogram(LATENCY_BUCKETS_NS)


class InMemoryCollector(TelemetryCollector):
    """The standard collector: accumulates everything in memory.

    One instance may span several runs (the CLI reuses one collector
    across an experiment's internal ``ESPProcessor.run`` calls); use
    :meth:`snapshot` to read the accumulated state at any point.
    """

    enabled = True

    def __init__(self) -> None:
        self._ops: dict[str, _OpMetrics] = {}
        self._sources: dict[str, dict[str, Any]] = {}
        self._counters: dict[str, int] = {}
        self._events: list[dict[str, Any]] = []
        self._spans: dict[str, _SpanMetrics] = {}
        self._span_log: list[dict[str, Any]] = []

    # -- executor hooks --------------------------------------------------------

    def _op(self, name: str) -> _OpMetrics:
        metrics = self._ops.get(name)
        if metrics is None:
            metrics = self._ops[name] = _OpMetrics()
        return metrics

    def record_batch(
        self, name: str, n_in: int, n_out: int, elapsed_ns: int
    ) -> None:
        metrics = self._op(name)
        metrics.tuples_in += n_in
        metrics.tuples_out += n_out
        metrics.batches += 1
        metrics.busy_ns += elapsed_ns
        metrics.latency.record(elapsed_ns)
        metrics.batch_sizes.record(n_in)

    def record_punctuation(
        self, name: str, n_out: int, elapsed_ns: int
    ) -> None:
        metrics = self._op(name)
        metrics.tuples_out += n_out
        metrics.punctuations += 1
        metrics.busy_ns += elapsed_ns
        metrics.latency.record(elapsed_ns)

    def sample_queue_depth(self, name: str, depth: int) -> None:
        metrics = self._op(name)
        if depth > metrics.max_queue_depth:
            metrics.max_queue_depth = depth

    def sample_watermark(self, source: str, lag: float) -> None:
        entry = self._source(source)
        if lag > entry["max_watermark_lag"]:
            entry["max_watermark_lag"] = lag

    def _source(self, source: str) -> dict[str, Any]:
        entry = self._sources.get(source)
        if entry is None:
            entry = self._sources[source] = {
                "tuples": 0, "max_watermark_lag": 0.0,
            }
        return entry

    def count_source(self, source: str, n: int = 1) -> None:
        self._source(source)["tuples"] += n

    def count_tick(self) -> None:
        self._counters["ticks"] = self._counters.get("ticks", 0) + 1

    def count(self, key: str, n: int = 1) -> None:
        self._counters[key] = self._counters.get(key, 0) + n

    def event(self, kind: str, **fields: Any) -> None:
        record = {"seq": len(self._events), "kind": kind, **fields}
        self._events.append(record)

    def record_span(self, name: str, duration_ns: int) -> None:
        metrics = self._spans.get(name)
        if metrics is None:
            metrics = self._spans[name] = _SpanMetrics()
        metrics.count += 1
        metrics.total_ns += duration_ns
        metrics.latency.record(duration_ns)

    def span(self, **fields: Any) -> None:
        record = {"seq": len(self._span_log), **fields}
        record.setdefault("kind", "span")
        self._span_log.append(record)

    # -- aggregation -----------------------------------------------------------

    def spawn(self) -> "InMemoryCollector":
        return InMemoryCollector()

    def absorb(
        self,
        snapshot: Mapping[str, Any],
        shard: int | None = None,
        node: str | None = None,
    ) -> None:
        """Merge a shard's snapshot, tagging its events with the shard.

        Shards are absorbed in shard order by the engine, so the merged
        event log — like everything else here — depends only on the data
        and the shard count, never on the backend.

        ``node`` labels a cluster worker's snapshot: counters become
        ``<node>.<key>``, source entries and span names ``<node>:<name>``
        (so one rollup shows every worker's gateway accounting and span
        histograms side by side — the ops plane renders the prefix as a
        ``worker`` label), events and span-log entries gain a ``node``
        field, and operator metrics merge unprefixed — the cluster-wide
        stage rollup.
        """
        if shard is not None or node is not None:
            snapshot = dict(snapshot)
            events = snapshot.get("events", [])
            if shard is not None:
                events = [{**event, "shard": shard} for event in events]
            if node is not None:
                events = [{**event, "node": node} for event in events]
                snapshot["counters"] = {
                    f"{node}.{key}": value
                    for key, value in snapshot.get("counters", {}).items()
                }
                snapshot["sources"] = {
                    f"{node}:{name}": entry
                    for name, entry in snapshot.get("sources", {}).items()
                }
                snapshot["spans"] = {
                    f"{node}:{name}": entry
                    for name, entry in snapshot.get("spans", {}).items()
                }
                snapshot["span_log"] = [
                    {**record, "node": node}
                    for record in snapshot.get("span_log", [])
                ]
            snapshot["events"] = events
        merged = merge_snapshots(self.snapshot(), snapshot)
        self._load(merged)

    def _load(self, snapshot: Mapping[str, Any]) -> None:
        self._ops = {}
        for name, entry in snapshot["operators"].items():
            metrics = self._op(name)
            metrics.tuples_in = entry["tuples_in"]
            metrics.tuples_out = entry["tuples_out"]
            metrics.batches = entry["batches"]
            metrics.punctuations = entry["punctuations"]
            metrics.busy_ns = entry["busy_ns"]
            metrics.latency = Histogram(
                LATENCY_BUCKETS_NS, entry["latency_ns"]
            )
            metrics.batch_sizes = Histogram(
                BATCH_SIZE_BUCKETS, entry["batch_sizes"]
            )
            metrics.max_queue_depth = entry["max_queue_depth"]
        self._sources = {
            name: dict(entry)
            for name, entry in snapshot["sources"].items()
        }
        self._counters = dict(snapshot["counters"])
        self._events = [dict(event) for event in snapshot["events"]]
        self._spans = {}
        for name, entry in snapshot.get("spans", {}).items():
            metrics = self._spans[name] = _SpanMetrics()
            metrics.count = entry["count"]
            metrics.total_ns = entry["total_ns"]
            metrics.latency = Histogram(
                LATENCY_BUCKETS_NS, entry["latency_ns"]
            )
        self._span_log = [
            dict(span) for span in snapshot.get("span_log", [])
        ]

    def snapshot(self) -> dict[str, Any]:
        out = empty_snapshot()
        for name, metrics in self._ops.items():
            out["operators"][name] = {
                "tuples_in": metrics.tuples_in,
                "tuples_out": metrics.tuples_out,
                "batches": metrics.batches,
                "punctuations": metrics.punctuations,
                "busy_ns": metrics.busy_ns,
                "latency_ns": list(metrics.latency.counts),
                "batch_sizes": list(metrics.batch_sizes.counts),
                "max_queue_depth": metrics.max_queue_depth,
            }
        out["sources"] = {
            name: dict(entry) for name, entry in self._sources.items()
        }
        out["counters"] = dict(self._counters)
        out["events"] = [dict(event) for event in self._events]
        for name, span_metrics in self._spans.items():
            out["spans"][name] = {
                "count": span_metrics.count,
                "total_ns": span_metrics.total_ns,
                "latency_ns": list(span_metrics.latency.counts),
            }
        out["span_log"] = [dict(span) for span in self._span_log]
        return out


# -- timing helper -------------------------------------------------------------

#: Monotonic nanosecond clock used by the executor's timed sections.
clock_ns = time.perf_counter_ns


# -- process-wide default ------------------------------------------------------

_DEFAULT: TelemetryCollector = NULL_COLLECTOR


def set_default_telemetry(
    collector: TelemetryCollector | None,
) -> TelemetryCollector:
    """Install the process-wide default collector; returns the previous.

    The CLI's ``--stats``/``--trace-out`` flags install an
    :class:`InMemoryCollector` here so that every experiment's internal
    ``ESPProcessor.run`` reports into it without each experiment
    threading a collector through. Pass ``None`` to restore the no-op.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = NULL_COLLECTOR if collector is None else collector
    return previous


def default_telemetry() -> TelemetryCollector:
    """The current process-wide default collector."""
    return _DEFAULT


def resolve_telemetry(
    collector: TelemetryCollector | None,
) -> TelemetryCollector:
    """An explicit collector, or the process-wide default when None."""
    return _DEFAULT if collector is None else collector


# -- presentation --------------------------------------------------------------


def _format_row(columns: Iterable[Any], widths: Sequence[int]) -> str:
    cells = []
    for index, (column, width) in enumerate(zip(columns, widths)):
        text = str(column)
        cells.append(text.ljust(width) if index == 0 else text.rjust(width))
    return "  ".join(cells).rstrip()


def _percentile_us(counts: Sequence[int], fraction: float) -> str:
    hist = Histogram(LATENCY_BUCKETS_NS, counts)
    value = hist.percentile(fraction)
    if value == 0.0:
        return "-"
    if value == float("inf"):
        return ">10s"
    return f"{value / 1e3:g}"


def format_table(
    snapshot: Mapping[str, Any],
    rollups: Mapping[str, Mapping[str, Any]] | None = None,
    storage: Mapping[str, int] | None = None,
) -> str:
    """Render a snapshot as the ``--stats`` end-of-run table.

    One row per operator (sorted by busy time, busiest first) with the
    tuple/batch counters, busy milliseconds, p50/p95 per-call latency
    (µs, upper bucket edges) and the max pending-queue depth; then the
    source watermark gauges; then, when given, per-stage rollups and
    the typed-column storage decisions
    (:func:`repro.streams.typedcols.storage_stats`).

    ``storage`` rides on the rendered table only: the snapshot itself
    must stay free of storage counters, because snapshots and trace
    events are pinned byte-identical across execution modes and across
    the numpy/no-numpy CI legs — typed storage is an
    environment-dependent detail that may never leak into them.
    """
    lines: list[str] = []
    header = (
        "operator", "tuples_in", "tuples_out", "batches",
        "busy_ms", "p50_us", "p95_us", "max_queue",
    )
    operators = snapshot.get("operators", {})
    rows = []
    for name, entry in sorted(
        operators.items(), key=lambda kv: (-kv[1]["busy_ns"], kv[0])
    ):
        rows.append((
            name,
            entry["tuples_in"],
            entry["tuples_out"],
            entry["batches"],
            f"{entry['busy_ns'] / 1e6:.2f}",
            _percentile_us(entry["latency_ns"], 0.50),
            _percentile_us(entry["latency_ns"], 0.95),
            entry["max_queue_depth"],
        ))
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    lines.append(_format_row(header, widths))
    lines.append(_format_row(("-" * w for w in widths), widths))
    for row in rows:
        lines.append(_format_row(row, widths))
    sources = snapshot.get("sources", {})
    if sources:
        lines.append("")
        lines.append("source            tuples  max_watermark_lag_s")
        for name, entry in sorted(sources.items()):
            lines.append(
                f"{name:<16s}  {entry['tuples']:>6d}"
                f"  {entry['max_watermark_lag']:>19.3f}"
            )
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("")
        lines.append(
            "span                count    total_ms  p50_us  p95_us"
        )
        for name, entry in sorted(spans.items()):
            lines.append(
                f"{name:<18s}  {entry['count']:>5d}"
                f"  {entry['total_ns'] / 1e6:>10.2f}"
                f"  {_percentile_us(entry['latency_ns'], 0.50):>6s}"
                f"  {_percentile_us(entry['latency_ns'], 0.95):>6s}"
            )
    if rollups:
        lines.append("")
        lines.append(
            "stage        tuples_in  tuples_out  batches     busy_ms"
        )
        for stage, entry in rollups.items():
            lines.append(
                f"{stage:<11s}  {entry['tuples_in']:>9d}"
                f"  {entry['tuples_out']:>10d}  {entry['batches']:>7d}"
                f"  {entry['busy_ns'] / 1e6:>10.2f}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(
            "counters: " + "  ".join(
                f"{key}={value}" for key, value in sorted(counters.items())
            )
        )
    if storage:
        lines.append("")
        lines.append(
            "typed columns: " + "  ".join(
                f"{key}={value}" for key, value in sorted(storage.items())
            )
        )
    return "\n".join(lines)
