"""Columnar batch representation for the hot ``on_batch`` path.

A :class:`ColumnBatch` stores a run of same-port deliveries as parallel
columns — one list per field, plus a timestamp list and a stream-label
list — instead of a list of :class:`~repro.streams.tuples.StreamTuple`
objects. Stateless kernels (filter, map, union relabel) then touch one
column per operation instead of one dict per tuple, which is where the
row path burns most of its time: the processor plumbing alone performs
three dict-copy ``derive`` calls per tuple (annotate, rename, union).

Semantics contract
------------------

``ColumnBatch`` is a *pure encoding*: for every batch,
``ColumnBatch.from_tuples(items).tuples() == list(items)``, field for
field and in order. Operators that consume batches columnar-side must
produce exactly the tuples the row kernel would have produced — the
differential suite in ``tests/test_columnar_equivalence.py`` pins this
per kernel, and the golden traces pin it end-to-end.

Batches are **immutable by convention**: derived batches share column
lists with their parents (``with_columns`` copies only the column dict,
``take``/``where`` with an all-rows selection return ``self``). Never
mutate a column list in place.

Mixed schemas (unions of streams with different fields) are handled
with the :data:`MISSING` sentinel: a cell holds ``MISSING`` when that
row's tuple did not carry the field. Always test cells with ``is
MISSING`` — equality comparisons would invoke arbitrary ``__eq__``
implementations (e.g. numpy arrays) on real values.

Typed columns
-------------

A column is stored as either a plain Python list or — when
:mod:`repro.streams.typedcols` detects a homogeneous numeric column at
encode time — a numpy array (``int64``/``float64``). Typed storage is
a pure acceleration: ``tolist()`` round-trips cells bit-exactly, every
consumer that needs rows goes through :func:`typedcols.to_list`, and
all fallback paths (no numpy, mixed dtypes, ``MISSING`` cells, tiny
batches) keep the list representation, so results are identical with
and without numpy. Code touching ``columns`` directly must treat a
column as *list-or-array*: index and ``len()`` freely, but never
``append``/``extend`` (immutability already forbids that) and never
compare a whole column with ``==`` (arrays broadcast).

Vectorizable callables
----------------------

Row-path callables can opt into columnar execution by exposing:

- ``.columnar(batch) -> ColumnBatch`` on map functions
  (:class:`AddFields`, :class:`SetStream`, :class:`ColumnMap`), and
- ``.mask(batch) -> sequence of truthy`` on predicates
  (:class:`FieldCompare`, :class:`ColumnPredicate`).

Kernels fall back to lazy row materialization when the hook is absent,
so arbitrary lambdas keep working unchanged.
"""

from __future__ import annotations

import operator as _op
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import OperatorError
from repro.streams import typedcols as _tc
from repro.streams.tuples import StreamTuple
from repro.streams.typedcols import (
    EXACT_INT_BOUND,
    INT64_MAX,
    INT64_MIN,
    is_typed,
    to_list,
)

__all__ = [
    "MISSING",
    "ColumnBatch",
    "AddFields",
    "SetStream",
    "FieldCompare",
    "ColumnMap",
    "ColumnPredicate",
    "coalesce",
]


class _Missing:
    """Singleton marking an absent cell in a mixed-schema column."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"

    def __reduce__(self):
        return (_missing_instance, ())


def _missing_instance() -> "_Missing":
    return MISSING


MISSING = _Missing()


class ColumnBatch:
    """A batch of stream tuples stored as parallel columns.

    Args:
        timestamps: Per-row event times, non-decreasing within a source.
        streams: Per-row stream labels.
        columns: Mapping of field name to a value list of the same
            length; absent cells hold :data:`MISSING`.

    The constructor takes ownership of the lists it is given — callers
    must not mutate them afterwards.
    """

    __slots__ = ("timestamps", "streams", "_columns", "_tuples", "_dense")

    def __init__(
        self,
        timestamps: list[float],
        streams: list[str],
        columns: dict[str, Any],
    ) -> None:
        n = len(timestamps)
        if len(streams) != n:
            raise OperatorError(
                f"column batch is ragged: {n} timestamps vs "
                f"{len(streams)} stream labels"
            )
        for field, col in columns.items():
            if len(col) != n:
                raise OperatorError(
                    f"column batch is ragged: column {field!r} has "
                    f"{len(col)} cells for {n} rows"
                )
        self.timestamps = timestamps
        self.streams = streams
        self._columns: dict[str, Any] | None = columns
        self._tuples: list[StreamTuple] | None = None
        #: True when the batch is *known* to contain no MISSING cell;
        #: False means unknown (a scan may still find it dense).
        self._dense = False

    # -- construction -------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnBatch":
        """A zero-row batch."""
        return cls([], [], {})

    @classmethod
    def from_tuples(cls, items: Sequence[StreamTuple]) -> "ColumnBatch":
        """Wrap a row batch; caches ``items`` for free decoding.

        Column construction is deferred until :attr:`columns` is first
        read, so purely row-oriented consumers (a window or sink kernel
        that materializes straight back to tuples) never pay for the
        encoding.
        """
        items = list(items)
        batch = cls(
            [t.timestamp for t in items], [t.stream for t in items], {}
        )
        batch._columns = None
        batch._tuples = items
        return batch

    @classmethod
    def concat(cls, parts: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches row-wise, unioning their schemas.

        Field order of the result is first-seen order across ``parts``;
        rows from a part lacking a field get :data:`MISSING` cells.
        """
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        if any(p._columns is None for p in parts) and all(
            p._tuples is not None for p in parts
        ):
            # Some part was never encoded and every part carries its
            # row cache: concatenate the rows and stay lazy.
            cached_rows: list[StreamTuple] = []
            all_timestamps: list[float] = []
            all_streams: list[str] = []
            for part in parts:
                cached_rows.extend(part._tuples)  # type: ignore[arg-type]
                all_timestamps.extend(part.timestamps)
                all_streams.extend(part.streams)
            batch = cls(all_timestamps, all_streams, {})
            batch._columns = None
            batch._tuples = cached_rows
            return batch
        timestamps: list[float] = []
        streams: list[str] = []
        for part in parts:
            timestamps.extend(part.timestamps)
            streams.extend(part.streams)
        # Field order of the union is first-seen order across parts.
        field_order: list[str] = []
        seen: set[str] = set()
        for part in parts:
            for field in part.columns:
                if field not in seen:
                    seen.add(field)
                    field_order.append(field)
        columns: dict[str, Any] = {}
        for field in field_order:
            srcs = [part.columns.get(field) for part in parts]
            if all(src is not None for src in srcs):
                typed = _tc.concat_cells(srcs)
                if typed is not None:
                    columns[field] = typed
                    continue
            col: list[Any] = []
            for part, src in zip(parts, srcs):
                if src is None:
                    col.extend([MISSING] * len(part))
                elif isinstance(src, list):
                    col.extend(src)
                else:
                    col.extend(to_list(src))
            columns[field] = col
        batch = cls(timestamps, streams, columns)
        first_schema = parts[0].columns.keys()
        batch._dense = all(
            p._dense and p.columns.keys() == first_schema for p in parts
        )
        if all(p._tuples is not None for p in parts):
            cached: list[StreamTuple] = []
            for part in parts:
                cached.extend(part._tuples)  # type: ignore[arg-type]
            batch._tuples = cached
        return batch

    # -- encoding ------------------------------------------------------

    @property
    def columns(self) -> dict[str, Any]:
        """Field → column mapping, encoded lazily from cached rows.

        A column is a plain list or, for homogeneous numeric fields, a
        numpy array (see :mod:`repro.streams.typedcols`). Treat the
        mapping and its columns as read-only — derived batches share
        them.
        """
        cols = self._columns
        if cols is None:
            cols = self._encode()
        return cols

    def _encode(self) -> dict[str, list[Any]]:
        items = self._tuples
        if items is None:  # pragma: no cover - construction invariant
            raise OperatorError("column batch has neither rows nor columns")
        n = len(items)
        columns: dict[str, Any] = {}
        uniform = False
        if n:
            keys = items[0]._values.keys()
            uniform = all(t._values.keys() == keys for t in items)
            if uniform:
                # Dense fast path: a uniform schema encodes with one
                # list comprehension per field. Homogeneous numeric
                # columns come out typed (numpy-backed) when enabled;
                # the first-cell sniff keeps obviously non-numeric
                # columns off the full type scan.
                for field in keys:
                    col: Any = [t._values[field] for t in items]
                    if type(col[0]) in (int, float):
                        typed = _tc.typed_from_values(col)
                        if typed is not None:
                            col = typed
                    columns[field] = col
            else:
                for i, item in enumerate(items):
                    for field, value in item.items():
                        col = columns.get(field)
                        if col is None:
                            col = columns[field] = [MISSING] * n
                        col[i] = value
        self._columns = columns
        if uniform:
            self._dense = not any(
                any(v is MISSING for v in col)
                for col in columns.values()
                if not is_typed(col)
            )
        return columns

    # -- decoding ------------------------------------------------------

    def tuples(self) -> list[StreamTuple]:
        """Materialize rows lazily; the result is cached and shared.

        Treat the returned list as read-only — repeated calls return
        the same list object.
        """
        if self._tuples is None:
            names = tuple(self.columns)
            # Typed columns decode through tolist(): bit-exact native
            # int/float objects, and tuple rows never see numpy types.
            cols = [to_list(self.columns[f]) for f in names]
            from_parts = StreamTuple._from_parts
            dense = self._dense or not any(
                any(v is MISSING for v in col) for col in cols
            )
            if dense and names:
                # Dense fast path: no MISSING cells, so each row's
                # values dict is a straight zip over the schema.
                self._tuples = [
                    from_parts(ts, dict(zip(names, row)), stream)
                    for ts, stream, row in zip(
                        self.timestamps, self.streams, zip(*cols)
                    )
                ]
            elif not names:
                self._tuples = [
                    from_parts(ts, {}, stream)
                    for ts, stream in zip(self.timestamps, self.streams)
                ]
            else:
                out: list[StreamTuple] = []
                for i, (ts, stream) in enumerate(
                    zip(self.timestamps, self.streams)
                ):
                    values: dict[str, Any] = {}
                    for field, col in zip(names, cols):
                        value = col[i]
                        if value is not MISSING:
                            values[field] = value
                    out.append(from_parts(ts, values, stream))
                self._tuples = out
        return self._tuples

    @property
    def is_encoded(self) -> bool:
        """Whether :attr:`columns` has already been (or came pre-) built.

        Kernels that merely *prefer* columns (the windowed group-by's
        key fast path) check this so reading them never forces an
        encode the batch would not otherwise pay for.
        """
        return self._columns is not None

    @property
    def is_materialized(self) -> bool:
        """Whether :meth:`tuples` has already been (or came pre-) built."""
        return self._tuples is not None

    # -- views ---------------------------------------------------------

    def column(self, field: str) -> Any:
        """The column for ``field`` (list or typed array); raises if absent."""
        try:
            return self.columns[field]
        except KeyError:
            raise OperatorError(
                f"column batch has no field {field!r}"
            ) from None

    def has_full_column(self, field: str) -> bool:
        """True when every row carries ``field`` (no MISSING cells)."""
        col = self.columns.get(field)
        if col is None:
            return False
        if is_typed(col):
            return True  # typed columns cannot hold MISSING
        return self._dense or not any(v is MISSING for v in col)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Rows at ``indices`` (ascending, unique), as a new batch.

        Selecting every row returns ``self`` unchanged; a cached tuple
        list is sliced rather than re-materialized.
        """
        n = len(self.timestamps)
        if len(indices) == n:
            return self
        if not indices:
            return ColumnBatch.empty()
        if self._columns is None:
            # Never encoded: slice the cached rows and stay lazy.
            assert self._tuples is not None
            batch = ColumnBatch(
                [self.timestamps[i] for i in indices],
                [self.streams[i] for i in indices],
                {},
            )
            batch._columns = None
            batch._tuples = [self._tuples[i] for i in indices]
            return batch
        batch = ColumnBatch(
            [self.timestamps[i] for i in indices],
            [self.streams[i] for i in indices],
            {
                field: _tc.take_cells(col, indices)
                for field, col in self.columns.items()
            },
        )
        batch._dense = self._dense
        if self._tuples is not None:
            batch._tuples = [self._tuples[i] for i in indices]
        return batch

    def where(self, mask: Sequence[Any]) -> "ColumnBatch":
        """Rows whose ``mask`` entry is truthy, as a new batch.

        All-truthy masks return ``self`` (no copy); all-falsy masks
        return an empty batch.
        """
        n = len(self.timestamps)
        if len(mask) != n:
            raise OperatorError(
                f"filter mask has {len(mask)} entries for {n} rows"
            )
        if is_typed(mask):
            # Boolean array from a vectorized predicate: keep the
            # all-truthy identity short-circuit, and turn the mask
            # into indices in C instead of a Python loop.
            if mask.all():
                return self
            indices = _tc.np.flatnonzero(mask).tolist()
        else:
            indices = [i for i, keep in enumerate(mask) if keep]
        return self.take(indices)

    def with_stream(self, stream: str) -> "ColumnBatch":
        """Relabel every row's stream; shares all columns with self."""
        if self._columns is None:
            # Never encoded: relabel the cached rows (sharing their
            # value dicts — tuples are immutable by convention) and
            # stay lazy rather than encoding just to share columns.
            assert self._tuples is not None
            batch = ColumnBatch(
                self.timestamps, [stream] * len(self.streams), {}
            )
            batch._columns = None
            batch._tuples = [
                StreamTuple._from_parts(t.timestamp, t._values, stream)
                for t in self._tuples
            ]
            return batch
        batch = ColumnBatch(
            self.timestamps, [stream] * len(self.streams), self.columns
        )
        batch._dense = self._dense
        return batch

    def with_columns(self, values: Mapping[str, Any]) -> "ColumnBatch":
        """Add or overwrite constant-valued columns; shares the rest."""
        n = len(self.timestamps)
        if self._columns is None and not any(
            v is MISSING for v in values.values()
        ):
            # Never encoded: derive the cached rows directly (the same
            # dict-merge the row path pays) and stay lazy, instead of
            # encoding every existing column just to add constants.
            assert self._tuples is not None
            adds = dict(values)
            batch = ColumnBatch(self.timestamps, self.streams, {})
            batch._columns = None
            batch._tuples = [
                StreamTuple._from_parts(
                    t.timestamp, {**t._values, **adds}, t.stream
                )
                for t in self._tuples
            ]
            return batch
        columns = dict(self.columns)
        for field, value in values.items():
            # Numeric constants are born typed so downstream compares
            # vectorize without a re-encode; everything else (strings,
            # MISSING, objects) stays a shared list.
            columns[field] = _tc.constant_cells(value, n)
        batch = ColumnBatch(self.timestamps, self.streams, columns)
        batch._dense = self._dense and not any(
            v is MISSING for v in values.values()
        )
        return batch

    def with_column(self, field: str, column: Sequence[Any]) -> "ColumnBatch":
        """Add or overwrite one per-row column; shares the rest.

        A typed (numpy) column is adopted as-is; a list of homogeneous
        native numerics is promoted to typed storage when enabled.
        """
        columns = dict(self.columns)
        if is_typed(column):
            columns[field] = column
            batch = ColumnBatch(self.timestamps, self.streams, columns)
            batch._dense = self._dense
            return batch
        new_col: Any = list(column)
        if new_col and type(new_col[0]) in (int, float):
            typed = _tc.typed_from_values(new_col)
            if typed is not None:
                new_col = typed
        columns[field] = new_col
        batch = ColumnBatch(self.timestamps, self.streams, columns)
        batch._dense = self._dense and (
            is_typed(new_col) or not any(v is MISSING for v in new_col)
        )
        return batch

    # -- invariants ----------------------------------------------------

    def assert_time_ordered(
        self, source: str = "batch", last: float | None = None
    ) -> float | None:
        """Raise :class:`OperatorError` on an out-of-order timestamp.

        Mirrors the row path's source check in ``Fjord`` — including its
        1e-9 tolerance and message — so columnar ingestion reports the
        same error for the same input. Returns the final timestamp (or
        ``last`` when the batch is empty) for chained checks.
        """
        for ts in self.timestamps:
            if last is not None and ts < last - 1e-9:
                raise OperatorError(
                    f"source {source!r} is out of order: "
                    f"timestamp {ts:g} arrived after {last:g}"
                )
            last = ts
        return last

    # -- dunder --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self.tuples())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnBatch):
            return self.tuples() == other.tuples()
        if isinstance(other, (list, tuple)):
            return self.tuples() == list(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - batches are not keys
        return hash(tuple(self.tuples()))

    def __repr__(self) -> str:
        fields = ", ".join(self.columns)
        return f"ColumnBatch({len(self)} rows; fields=[{fields}])"


def coalesce(
    payloads: Sequence["ColumnBatch | StreamTuple"],
) -> ColumnBatch:
    """Fold a same-port run of loose tuples and batches into one batch.

    The executor's pending queues hold a mix of per-tuple source
    deliveries and whole-batch operator outputs; a drain pass coalesces
    each maximal same-port run before invoking the columnar kernel.
    """
    if len(payloads) == 1 and isinstance(payloads[0], ColumnBatch):
        return payloads[0]
    parts: list[ColumnBatch] = []
    loose: list[StreamTuple] = []
    for payload in payloads:
        if isinstance(payload, ColumnBatch):
            if loose:
                parts.append(ColumnBatch.from_tuples(loose))
                loose = []
            parts.append(payload)
        else:
            loose.append(payload)
    if loose:
        parts.append(ColumnBatch.from_tuples(loose))
    return ColumnBatch.concat(parts)


# -- vectorizable callables -------------------------------------------


class AddFields:
    """Map function adding (or overwriting) constant fields per tuple.

    Row path: ``t.derive(values=...)`` per tuple. Columnar path: one
    shared constant column per field, O(fields) per batch.
    """

    __slots__ = ("values",)

    def __init__(self, values: Mapping[str, Any]) -> None:
        self.values = dict(values)

    def __call__(self, item: StreamTuple) -> StreamTuple:
        return item.derive(values=self.values)

    def columnar(self, batch: ColumnBatch) -> ColumnBatch:
        return batch.with_columns(self.values)


class SetStream:
    """Map function relabeling each tuple's stream.

    Row path: ``t.derive(stream=...)`` (a dict copy per tuple).
    Columnar path: swap the stream list, share every column.
    """

    __slots__ = ("stream",)

    def __init__(self, stream: str) -> None:
        self.stream = stream

    def __call__(self, item: StreamTuple) -> StreamTuple:
        return item.derive(stream=self.stream)

    def columnar(self, batch: ColumnBatch) -> ColumnBatch:
        return batch.with_stream(self.stream)


class FieldCompare:
    """Predicate comparing one field against a constant.

    ``FieldCompare("temp", "<", 50.0)`` row-path raises
    :class:`~repro.errors.SchemaError` on tuples missing the field,
    exactly like ``t["temp"] < 50.0`` would; the mask path falls back
    to per-row evaluation whenever the column is absent or partial so
    the error behavior (and its ordering) is identical.
    """

    __slots__ = ("field", "op", "value", "_cmp")

    _OPS: dict[str, Callable[[Any, Any], bool]] = {
        "<": _op.lt,
        "<=": _op.le,
        ">": _op.gt,
        ">=": _op.ge,
        "==": _op.eq,
        "!=": _op.ne,
    }

    def __init__(self, field: str, op: str, value: Any) -> None:
        if op not in self._OPS:
            raise OperatorError(
                f"unknown comparison {op!r}; expected one of "
                f"{sorted(self._OPS)}"
            )
        self.field = field
        self.op = op
        self.value = value
        self._cmp = self._OPS[op]

    def __call__(self, item: StreamTuple) -> bool:
        return bool(self._cmp(item[self.field], self.value))

    def mask(self, batch: ColumnBatch) -> Any:
        """Whole-batch mask: a bool array on typed columns, else a list.

        The array path only engages when its result is provably
        identical to the per-row loop: int column vs int constant
        (exact int64 compares), float column vs float constant (same
        IEEE-754 compares element-wise), or float column vs an int
        constant small enough (``|v| <= 2**53``) that numpy's
        int→float64 promotion is exact. Everything else — including an
        int column against a float constant, where numpy would compare
        lossily-promoted cells while Python compares exactly — falls
        back to the loop.
        """
        col = batch.columns.get(self.field)
        if col is None:
            return [self(item) for item in batch.tuples()]
        cmp, value = self._cmp, self.value
        if is_typed(col):
            vt = type(value)
            kind = col.dtype.kind
            if (
                (vt is int and kind == "i" and INT64_MIN <= value <= INT64_MAX)
                or (vt is float and kind == "f")
                or (
                    vt is int
                    and kind == "f"
                    and -EXACT_INT_BOUND <= value <= EXACT_INT_BOUND
                )
            ):
                return cmp(col, value)
            return [bool(cmp(v, value)) for v in col.tolist()]
        if any(v is MISSING for v in col):
            return [self(item) for item in batch.tuples()]
        return [bool(cmp(v, value)) for v in col]


class ColumnMap:
    """Wrap a row map function with an explicit columnar kernel.

    ``batch_fn`` must produce the batch the row function would have
    produced tuple-by-tuple — the differential suite checks this for
    every registered kernel, but custom wrappers carry the obligation
    themselves.
    """

    __slots__ = ("_row_fn", "_batch_fn")

    def __init__(
        self,
        row_fn: Callable[[StreamTuple], Any],
        batch_fn: Callable[[ColumnBatch], ColumnBatch],
    ) -> None:
        self._row_fn = row_fn
        self._batch_fn = batch_fn

    def __call__(self, item: StreamTuple) -> Any:
        return self._row_fn(item)

    def columnar(self, batch: ColumnBatch) -> ColumnBatch:
        return self._batch_fn(batch)


class ColumnPredicate:
    """Wrap a row predicate with an explicit mask kernel."""

    __slots__ = ("_row_fn", "_mask_fn")

    def __init__(
        self,
        row_fn: Callable[[StreamTuple], Any],
        mask_fn: Callable[[ColumnBatch], Sequence[Any]],
    ) -> None:
        self._row_fn = row_fn
        self._mask_fn = mask_fn

    def __call__(self, item: StreamTuple) -> Any:
        return self._row_fn(item)

    def mask(self, batch: ColumnBatch) -> Sequence[Any]:
        return self._mask_fn(batch)


def _iter_tuples(
    items: "Iterable[StreamTuple] | ColumnBatch",
) -> Sequence[StreamTuple]:
    """Rows of either representation, without copying lists."""
    if isinstance(items, ColumnBatch):
        return items.tuples()
    if isinstance(items, list):
        return items
    return list(items)
