"""Incremental sliding-window aggregation.

:class:`~repro.streams.operators.WindowedGroupByOp` re-evaluates its
aggregates over the full window contents at every punctuation — always
correct, O(window) per slide. At RFID rates (5 Hz × dozens of tags) that
is fine; at higher rates the recompute dominates. This module provides
the classic alternative for *subtractable* aggregates (count, sum, avg,
and count-distinct via reference counts): maintain running state, apply
inserts as they arrive and retract evicted tuples, making each slide
O(inserts + evictions).

Non-subtractable aggregates (min/max/median/stdev-with-forgetting-free
semantics) deliberately stay on the recompute path — mixing a correct
slow path with a fast path is how engines grow silent wrong answers, so
:class:`IncrementalWindowedGroupByOp` *rejects* aggregates it cannot
maintain incrementally instead of falling back quietly.

Equivalence with the recompute operator is pinned by property tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.operators import GroupKey, Operator
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

#: Aggregates with O(1) insert/retract maintenance.
SUBTRACTABLE = frozenset({"count", "sum", "avg", "mean"})


class _IncrementalState:
    """Running state for one group's subtractable aggregates."""

    __slots__ = ("buffer", "count", "sums", "distinct")

    def __init__(self, n_sums: int):
        #: (timestamp, tuple, per-spec argument values)
        self.buffer: deque[tuple[float, StreamTuple, list]] = deque()
        self.count = 0
        self.sums = [0.0] * n_sums
        self.distinct: list[dict[Any, int]] = [dict() for _ in range(n_sums)]


class IncrementalWindowedGroupByOp(Operator):
    """Windowed GROUP BY with O(1)-per-tuple aggregate maintenance.

    A drop-in replacement for
    :class:`~repro.streams.operators.WindowedGroupByOp` restricted to
    time-range windows and subtractable aggregates.

    Args:
        window: Time-range window spec (``Rows``/``NOW`` windows gain
            nothing from incrementality and are rejected).
        keys: Grouping key components.
        aggregates: Aggregate specs; every spec's name must be in
            :data:`SUBTRACTABLE`. ``count(distinct x)`` is supported via
            reference counting.
        output_stream: Stream name for emitted tuples.

    Raises:
        OperatorError: On unsupported window kinds or aggregates.
    """

    def __init__(
        self,
        window: WindowSpec,
        keys: Sequence[GroupKey] = (),
        aggregates: Sequence[AggregateSpec] = (),
        output_stream: str = "",
    ):
        if window.kind != "range" or window.is_now:
            raise OperatorError(
                "incremental group-by needs a positive time-range window"
            )
        if not aggregates and not keys:
            raise OperatorError("group-by needs at least one key or aggregate")
        for spec in aggregates:
            if spec.name not in SUBTRACTABLE:
                raise OperatorError(
                    f"aggregate {spec.name!r} is not subtractable; use "
                    "WindowedGroupByOp for it"
                )
            if spec.distinct and spec.name != "count":
                raise OperatorError(
                    "only count(distinct ...) is maintained incrementally"
                )
        self._range = window.range_seconds
        self._keys = list(keys)
        self._specs = list(aggregates)
        self._output_stream = output_stream
        self._states: dict[tuple, _IncrementalState] = {}

    STATE_ATTRS = ("_states",)

    # -- maintenance ------------------------------------------------------------

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        key = tuple(k.extractor(item) for k in self._keys)
        state = self._states.get(key)
        if state is None:
            state = _IncrementalState(len(self._specs))
            self._states[key] = state
        arguments = []
        for index, spec in enumerate(self._specs):
            value = (
                1 if spec.argument is None else spec.argument(item)
            )
            arguments.append(value)
            self._apply(state, index, spec, value, +1)
        state.count += 1
        state.buffer.append((item.timestamp, item, arguments))
        return []

    def _apply(
        self,
        state: _IncrementalState,
        index: int,
        spec: AggregateSpec,
        value: Any,
        sign: int,
    ) -> None:
        if value is None:
            return
        if spec.distinct:
            refs = state.distinct[index]
            refs[value] = refs.get(value, 0) + sign
            if refs[value] <= 0:
                del refs[value]
            return
        if spec.name == "count":
            state.sums[index] += sign
        else:  # sum / avg need the running total (and non-None count)
            state.sums[index] += sign * float(value)
            state.distinct[index][None] = (
                state.distinct[index].get(None, 0) + sign
            )

    def on_time(self, now: float) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        cutoff = now - self._range
        empty: list[tuple] = []
        # Component-wise sorted key order, matching WindowedGroupByOp: the
        # emission order must be a function of the data alone so sharded
        # execution can reproduce it (repro.streams.shard).
        for key, state in sorted(
            self._states.items(),
            key=lambda kv: tuple(str(c) for c in kv[0]),
        ):
            while state.buffer and state.buffer[0][0] < cutoff - 1e-9:
                _ts, _item, arguments = state.buffer.popleft()
                state.count -= 1
                for index, spec in enumerate(self._specs):
                    self._apply(state, index, spec, arguments[index], -1)
            if not state.buffer:
                empty.append(key)
                continue
            values: dict[str, Any] = {
                k.name: component for k, component in zip(self._keys, key)
            }
            for index, spec in enumerate(self._specs):
                values[spec.output] = self._result(state, index, spec)
            out.append(StreamTuple(now, values, self._output_stream))
        for key in empty:
            del self._states[key]
        return out

    def _result(
        self, state: _IncrementalState, index: int, spec: AggregateSpec
    ) -> Any:
        if spec.distinct:
            return len(state.distinct[index])
        if spec.name == "count":
            return int(state.sums[index])
        non_null = state.distinct[index].get(None, 0)
        if non_null == 0:
            return None
        if spec.name == "sum":
            return state.sums[index]
        return state.sums[index] / non_null  # avg / mean
