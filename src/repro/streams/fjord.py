"""Fjord-style pipelined executor.

A :class:`Fjord` wires sources, operators and sinks into a DAG and pushes
tuples plus time punctuations through it in topological order, following
the execution style of the Fjord architecture the paper builds on [22]:

- data tuples flow downstream as soon as they are produced (no batching
  across operators);
- at each punctuation time ``t``, nodes are visited in topological order,
  so a downstream operator sees everything its upstreams emitted *at* ``t``
  before its own windows slide — this is what lets Arbitrate consume
  Smooth's time-``t`` output within the same instant, as the paper's
  pipeline diagram (Figure 4) requires.

The executor is deliberately single-threaded and deterministic: the
reproduction's experiments must be bit-for-bit repeatable. Parallelism
lives one level up, in :mod:`repro.streams.shard`, which runs several
independent Fjords (one per shard of the key space) and merges their
outputs deterministically — see that module for the determinism
guarantee.

Tuples are moved between operators in batches: a node's pending input is
drained with one :meth:`~repro.streams.operators.Operator.on_batch` call
per run of same-port tuples rather than one Python call per tuple, which
is where most of the executor's time used to go.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.errors import OperatorError
from repro.streams.operators import Operator, SinkOp
from repro.streams.telemetry import (
    NULL_COLLECTOR,
    TelemetryCollector,
    clock_ns,
    resolve_telemetry,
)
from repro.streams.tuples import StreamTuple


class _Node:
    """Internal DAG node: an operator plus its downstream edges."""

    __slots__ = ("name", "op", "downstream", "pending", "tuples_in",
                 "tuples_out")

    def __init__(self, name: str, op: Operator):
        self.name = name
        self.op = op
        #: (target node name, port on target)
        self.downstream: list[tuple[str, int]] = []
        #: tuples delivered but not yet processed, as (tuple, port)
        self.pending: list[tuple[StreamTuple, int]] = []
        #: observability counters, updated during run()
        self.tuples_in = 0
        self.tuples_out = 0


class Fjord:
    """A pipelined dataflow of stream operators.

    Typical usage::

        fjord = Fjord()
        fjord.add_source("rfid0", reader0_tuples)
        fjord.add_operator("smooth0", smooth_op, inputs=["rfid0"])
        sink = fjord.add_sink("out", inputs=["smooth0"])
        fjord.run(ticks=clock.ticks(until=700.0))
        results = sink.results

    Sources are iterables of :class:`StreamTuple` sorted by timestamp;
    multiple sources are merged on the time axis. ``inputs`` entries may be
    plain node names (delivered on port 0) or ``(name, port)`` pairs for
    multi-input operators such as joins.
    """

    def __init__(self):
        self._nodes: dict[str, _Node] = {}
        self._sources: dict[str, Iterable[StreamTuple]] = {}
        self._source_edges: dict[str, list[tuple[str, int]]] = {}
        self._order: list[str] | None = None

    # -- graph construction ----------------------------------------------------

    def add_source(self, name: str, items: Iterable[StreamTuple]) -> None:
        """Register a named source of timestamp-sorted tuples."""
        self._check_fresh_name(name)
        self._sources[name] = items
        self._source_edges[name] = []
        self._order = None

    def add_operator(
        self,
        name: str,
        op: Operator,
        inputs: Sequence["str | tuple[str, int]"],
    ) -> Operator:
        """Add an operator node fed by the named ``inputs``.

        Returns the operator for convenient chaining.
        """
        self._check_fresh_name(name)
        node = _Node(name, op)
        self._nodes[name] = node
        for entry in inputs:
            upstream, port = self._normalize_input(entry)
            self._connect(upstream, name, port)
        self._order = None
        return op

    def add_sink(
        self,
        name: str,
        inputs: Sequence["str | tuple[str, int]"],
        callback=None,
    ) -> SinkOp:
        """Add a collecting sink; returns it so callers can read results."""
        sink = SinkOp(callback=callback)
        self.add_operator(name, sink, inputs)
        return sink

    def _check_fresh_name(self, name: str) -> None:
        if name in self._nodes or name in self._sources:
            raise OperatorError(f"duplicate node name {name!r}")

    @staticmethod
    def _normalize_input(entry: "str | tuple[str, int]") -> tuple[str, int]:
        if isinstance(entry, str):
            return entry, 0
        upstream, port = entry
        return upstream, int(port)

    def _connect(self, upstream: str, downstream: str, port: int) -> None:
        if upstream in self._sources:
            self._source_edges[upstream].append((downstream, port))
        elif upstream in self._nodes:
            self._nodes[upstream].downstream.append((downstream, port))
        else:
            raise OperatorError(f"unknown upstream node {upstream!r}")

    # -- observability --------------------------------------------------------------

    def stats(self) -> dict[str, tuple[int, int]]:
        """Per-node flow counters: name → (tuples in, tuples out).

        Populated by :meth:`run`; zero before execution. Useful for
        spotting where a deployment's data volume collapses (Point-stage
        early elimination, §3.2) or silently explodes (a join gone
        quadratic).
        """
        return {
            name: (node.tuples_in, node.tuples_out)
            for name, node in self._nodes.items()
        }

    def describe(self) -> str:
        """A human-readable wiring description of the dataflow.

        One line per node in execution order, showing its operator type,
        upstream sources and flow counters (after a run).
        """
        upstream: dict[str, list[str]] = {name: [] for name in self._nodes}
        for source, edges in self._source_edges.items():
            for target, _port in edges:
                upstream[target].append(f"source:{source}")
        for name, node in self._nodes.items():
            for target, _port in node.downstream:
                upstream[target].append(name)
        lines = ["dataflow:"]
        for name in self._topological_order():
            node = self._nodes[name]
            feeds = ", ".join(sorted(upstream[name])) or "(none)"
            lines.append(
                f"  {name} [{type(node.op).__name__}] <- {feeds}"
                f"  ({node.tuples_in} in / {node.tuples_out} out)"
            )
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------------

    def _topological_order(self) -> list[str]:
        """Topologically sort operator nodes (Kahn's algorithm).

        Ready nodes are visited in lexicographic name order (a heap, not a
        FIFO), so the order — and therefore the interleaving of same-tick
        emissions from parallel per-granule chains — depends only on the
        node names, never on graph construction order. The sharded
        executor's deterministic merge relies on this.
        """
        if self._order is not None:
            return self._order
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for target, _port in node.downstream:
                indegree[target] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            name = heapq.heappop(ready)
            order.append(name)
            for target, _port in self._nodes[name].downstream:
                indegree[target] -= 1
                if indegree[target] == 0:
                    heapq.heappush(ready, target)
        if len(order) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(order))
            raise OperatorError(f"operator graph has a cycle involving {cyclic}")
        self._order = order
        return order

    def _checked(
        self,
        name: str,
        items: Iterable[StreamTuple],
        collector: TelemetryCollector = NULL_COLLECTOR,
    ) -> Iterator[StreamTuple]:
        """Yield a source's tuples, rejecting timestamp regressions.

        The executor's injection loop and every windowed operator assume
        sources are sorted by timestamp; a violation used to be silently
        accepted and produced quietly wrong windows downstream. The
        rejection is recorded as a ``source_out_of_order`` trace event
        before the raise, so post-mortem trace logs carry the failure.
        """
        last: float | None = None
        for item in items:
            if last is not None and item.timestamp < last - 1e-9:
                collector.event(
                    "source_out_of_order",
                    source=name,
                    timestamp=item.timestamp,
                    previous=last,
                )
                raise OperatorError(
                    f"source {name!r} is out of order: timestamp "
                    f"{item.timestamp:g} arrived after {last:g}"
                )
            last = item.timestamp
            yield item

    def _merged_source(
        self, collector: TelemetryCollector = NULL_COLLECTOR
    ) -> Iterator[tuple[StreamTuple, str]]:
        """Merge all sources into one timestamp-ordered iterator.

        Equal timestamps across sources tie-break on the source *name* —
        a pure function of the data, never of consumption history — so
        that restricting every source to a subset (as sharded execution
        does) cannot reorder the surviving tuples. Within one source,
        arrival order is preserved (at most one heap entry per source).
        """
        heap: list[tuple[float, str, StreamTuple]] = []
        iterators = {
            name: self._checked(name, items, collector)
            for name, items in self._sources.items()
        }
        for name in sorted(iterators):
            first = next(iterators[name], None)
            if first is not None:
                heapq.heappush(heap, (first.timestamp, name, first))
        while heap:
            _ts, name, item = heapq.heappop(heap)
            yield item, name
            nxt = next(iterators[name], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.timestamp, name, nxt))

    def _deliver(self, item: StreamTuple, target: str, port: int) -> None:
        self._nodes[target].pending.append((item, port))

    def _drain_node(
        self,
        node: _Node,
        collector: TelemetryCollector = NULL_COLLECTOR,
        now: float = 0.0,
    ) -> None:
        """Process a node's pending tuples, fanning outputs downstream.

        Pending input is consumed in maximal runs of same-port tuples, one
        :meth:`on_batch` call per run; output order is identical to
        tuple-at-a-time delivery because ``on_batch`` concatenates
        per-tuple outputs in input order. Flow counters account each run
        by its length, so batched and tuple-at-a-time delivery produce
        identical counters by construction; when telemetry is enabled the
        same run lengths feed the collector's batch-size histograms.
        """
        enabled = collector.enabled
        while node.pending:
            batch, node.pending = node.pending, []
            start = 0
            while start < len(batch):
                port = batch[start][1]
                stop = start + 1
                while stop < len(batch) and batch[stop][1] == port:
                    stop += 1
                run = [item for item, _port in batch[start:stop]]
                node.tuples_in += len(run)
                if enabled:
                    began = clock_ns()
                    out = node.op.on_batch(run, port)
                    collector.record_batch(
                        node.name, len(run), len(out), clock_ns() - began
                    )
                    collector.event(
                        "batch_drain",
                        node=node.name,
                        t=now,
                        n_in=len(run),
                        n_out=len(out),
                    )
                else:
                    out = node.op.on_batch(run, port)
                node.tuples_out += len(out)
                for target, tport in node.downstream:
                    for item in out:
                        self._deliver(item, target, tport)
                start = stop

    def run(
        self,
        ticks: Iterable[float],
        telemetry: TelemetryCollector | None = None,
    ) -> None:
        """Execute the dataflow over the given punctuation times.

        All source tuples with timestamp ``<= tick`` are injected before
        that tick's punctuation sweep. Source tuples later than the final
        tick are not delivered.

        Args:
            ticks: Punctuation times, ascending.
            telemetry: Instrumentation sink (see
                :mod:`repro.streams.telemetry`); ``None`` uses the
                process-wide default, which is a no-op unless installed.

        Raises:
            OperatorError: If a source yields out-of-order timestamps.
        """
        for _now in self.run_stepped(ticks, telemetry=telemetry):
            pass

    def run_stepped(
        self,
        ticks: Iterable[float],
        telemetry: TelemetryCollector | None = None,
    ) -> Iterator[float]:
        """Like :meth:`run`, but yield after each punctuation sweep.

        Yields the punctuation time just processed, with every emission
        for that instant already delivered to the sinks — callers can
        observe (or tag) per-tick output incrementally, which is how the
        sharded executor attributes each shard's output to its tick.

        When telemetry is enabled, every ``on_batch``/``on_time`` call is
        timed into per-operator histograms, and tick boundaries sample
        each node's pending-queue depth (the backpressure gauge) plus
        each source's watermark lag (tick time minus the newest injected
        timestamp). The no-op collector skips all of it behind one flag
        check per call site.
        """
        collector = resolve_telemetry(telemetry)
        enabled = collector.enabled
        order = self._topological_order()
        if enabled:
            collector.event(
                "run_start", nodes=len(order), sources=len(self._sources)
            )
            for name in order:
                collector.event(
                    "operator_start",
                    node=name,
                    op=type(self._nodes[name].op).__name__,
                )
        feed = self._merged_source(collector)
        lookahead: tuple[StreamTuple, str] | None = next(feed, None)
        newest: dict[str, float] = {}  # per-source newest injected stamp
        tick_count = 0
        for now in ticks:
            # 1. Inject all due source tuples.
            while lookahead is not None and lookahead[0].timestamp <= now + 1e-9:
                item, source = lookahead
                for target, port in self._source_edges[source]:
                    self._deliver(item, target, port)
                if enabled:
                    collector.count_source(source)
                    newest[source] = item.timestamp
                lookahead = next(feed, None)
            if enabled:
                for source, stamp in newest.items():
                    collector.sample_watermark(source, now - stamp)
                for name in order:
                    depth = len(self._nodes[name].pending)
                    if depth:
                        collector.sample_queue_depth(name, depth)
            # 2. Punctuation sweep in topological order: drain inputs, then
            #    slide windows; emissions feed later nodes in the same sweep.
            for name in order:
                node = self._nodes[name]
                self._drain_node(node, collector, now)
                if enabled:
                    began = clock_ns()
                    out = node.op.on_time(now)
                    collector.record_punctuation(
                        name, len(out), clock_ns() - began
                    )
                else:
                    out = node.op.on_time(now)
                node.tuples_out += len(out)
                for target, tport in node.downstream:
                    for item in out:
                        self._deliver(item, target, tport)
            # 3. Drain anything a final-node emission produced (defensive:
            #    topological order makes this a no-op, but user callbacks may
            #    inject tuples).
            for name in order:
                self._drain_node(self._nodes[name], collector, now)
            if enabled:
                collector.count_tick()
            tick_count += 1
            yield now
        if enabled:
            for name in order:
                node = self._nodes[name]
                collector.event(
                    "operator_stop",
                    node=name,
                    tuples_in=node.tuples_in,
                    tuples_out=node.tuples_out,
                )
            collector.event("run_end", ticks=tick_count)
