"""Fjord-style pipelined executor.

A :class:`Fjord` wires sources, operators and sinks into a DAG and pushes
tuples plus time punctuations through it in topological order, following
the execution style of the Fjord architecture the paper builds on [22]:

- data tuples flow downstream as soon as they are produced (no batching
  across operators);
- at each punctuation time ``t``, nodes are visited in topological order,
  so a downstream operator sees everything its upstreams emitted *at* ``t``
  before its own windows slide — this is what lets Arbitrate consume
  Smooth's time-``t`` output within the same instant, as the paper's
  pipeline diagram (Figure 4) requires.

The executor is deliberately single-threaded and deterministic: the
reproduction's experiments must be bit-for-bit repeatable. Parallelism
lives one level up, in :mod:`repro.streams.shard`, which runs several
independent Fjords (one per shard of the key space) and merges their
outputs deterministically — see that module for the determinism
guarantee.

Tuples are moved between operators in batches: a node's pending input is
drained with one :meth:`~repro.streams.operators.Operator.on_batch` call
per run of same-port tuples rather than one Python call per tuple, which
is where most of the executor's time used to go.

In ``columnar``/``fused`` mode the same drain coalesces each run into a
:class:`~repro.streams.columnar.ColumnBatch`, whose homogeneous numeric
columns are numpy-backed when available (:mod:`repro.streams.typedcols`).
The executor is agnostic to the storage class: typed and list columns
flow through the same nodes, and every mode (and both storage classes)
produces bit-identical output — mode is a pure performance knob.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import OperatorError
from repro.streams.columnar import ColumnBatch, coalesce
from repro.streams.operators import FilterOp, MapOp, Operator, SinkOp, UnionOp
from repro.streams.telemetry import (
    NULL_COLLECTOR,
    IngestTrace,
    TelemetryCollector,
    clock_ns,
    resolve_telemetry,
)
from repro.streams.tuples import StreamTuple

#: Execution modes accepted by :meth:`Fjord.run` and friends. ``row``
#: is the original per-tuple-object path; ``columnar`` drains pending
#: input through :meth:`Operator.on_column_batch` column kernels;
#: ``fused`` additionally collapses linear runs of stateless operators
#: into single fused kernels (see :meth:`Fjord.fuse`). All three
#: produce bit-identical sink output — the differential suite in
#: ``tests/test_columnar_equivalence.py`` pins it.
MODES = ("row", "columnar", "fused")


class _Node:
    """Internal DAG node: an operator plus its downstream edges."""

    __slots__ = ("name", "op", "downstream", "pending", "tuples_in",
                 "tuples_out", "passive")

    def __init__(self, name: str, op: Operator):
        self.name = name
        self.op = op
        #: (target node name, port on target)
        self.downstream: list[tuple[str, int]] = []
        #: input delivered but not yet processed, as (payload, port);
        #: payloads are single tuples (source injection, on_time output,
        #: row-mode operator output) or whole ColumnBatches (columnar-
        #: mode operator output)
        self.pending: list[tuple["StreamTuple | ColumnBatch", int]] = []
        #: observability counters, updated during run()
        self.tuples_in = 0
        self.tuples_out = 0
        #: a passive node inherits the base no-op ``on_time``: it can
        #: never emit on punctuation, so sweeps skip it entirely while
        #: its input queue is empty (any ``on_time`` override — even one
        #: that happens to return [] — disables the skip)
        self.passive = type(op).on_time is Operator.on_time


class FusedStatelessOp(Operator):
    """Several stateless operators collapsed into one DAG node.

    Produced by :meth:`Fjord.fuse`: a linear run of filter/map/union
    nodes becomes one node that applies the constituent kernels back to
    back without the executor's per-node delivery, queueing and
    accounting between them. Per-stage flow counters are kept so
    :meth:`Fjord.stats` can report the constituent nodes exactly as an
    unfused run would.

    Unlike :class:`~repro.streams.operators.ChainOp` this is an
    executor-internal artifact: stages keep their original node names
    for accounting, and only stateless (punctuation-free) operators are
    ever fused, so ``on_time`` is trivially empty.
    """

    #: The fused stages themselves are stateless by construction; the
    #: per-stage flow counters are the only data state to checkpoint
    #: (so restored stats match an uninterrupted run exactly).
    STATE_ATTRS = ("stage_counts",)

    def __init__(self, stages: Sequence[tuple[str, Operator]]):
        self.stages = list(stages)
        #: node name → [tuples_in, tuples_out], matching what the
        #: unfused executor's per-node counters would have recorded
        self.stage_counts: dict[str, list[int]] = {
            name: [0, 0] for name, _ in self.stages
        }

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        return self.on_batch([item], port)

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        pending: Sequence[StreamTuple] = items
        for name, op in self.stages:
            counts = self.stage_counts[name]
            counts[0] += len(pending)
            if not pending:
                return []
            pending = op.on_batch(pending, port)
            counts[1] += len(pending)
            port = 0  # only the first stage sees the original port
        return pending if isinstance(pending, list) else list(pending)

    def on_column_batch(self, batch: ColumnBatch, port: int = 0) -> ColumnBatch:
        pending = batch
        for name, op in self.stages:
            counts = self.stage_counts[name]
            n = len(pending)
            counts[0] += n
            if not n:
                return pending
            pending = op.on_column_batch(pending, port)
            counts[1] += len(pending)
            port = 0  # only the first stage sees the original port
        return pending


#: Operator types safe to fuse: stateless, single-output-per-input-run,
#: and punctuation-free. Windowed operators hold cross-call state keyed
#: to their own node identity and must stay unfused.
_FUSABLE_TYPES = (FilterOp, MapOp, UnionOp, FusedStatelessOp)


def _fusable(op: Operator) -> bool:
    return isinstance(op, _FUSABLE_TYPES)


def _stages_of(name: str, op: Operator) -> list[tuple[str, Operator]]:
    if isinstance(op, FusedStatelessOp):
        return op.stages
    return [(name, op)]


class Fjord:
    """A pipelined dataflow of stream operators.

    Typical usage::

        fjord = Fjord()
        fjord.add_source("rfid0", reader0_tuples)
        fjord.add_operator("smooth0", smooth_op, inputs=["rfid0"])
        sink = fjord.add_sink("out", inputs=["smooth0"])
        fjord.run(ticks=clock.ticks(until=700.0))
        results = sink.results

    Sources are iterables of :class:`StreamTuple` sorted by timestamp;
    multiple sources are merged on the time axis. ``inputs`` entries may be
    plain node names (delivered on port 0) or ``(name, port)`` pairs for
    multi-input operators such as joins.
    """

    def __init__(self):
        self._nodes: dict[str, _Node] = {}
        self._sources: dict[str, Iterable[StreamTuple]] = {}
        self._source_edges: dict[str, list[tuple[str, int]]] = {}
        self._order: list[str] | None = None
        self._fused = False

    # -- graph construction ----------------------------------------------------

    def add_source(self, name: str, items: Iterable[StreamTuple]) -> None:
        """Register a named source of timestamp-sorted tuples."""
        self._check_fresh_name(name)
        self._sources[name] = items
        self._source_edges[name] = []
        self._order = None

    def add_operator(
        self,
        name: str,
        op: Operator,
        inputs: Sequence["str | tuple[str, int]"],
    ) -> Operator:
        """Add an operator node fed by the named ``inputs``.

        Returns the operator for convenient chaining.
        """
        self._check_fresh_name(name)
        node = _Node(name, op)
        self._nodes[name] = node
        for entry in inputs:
            upstream, port = self._normalize_input(entry)
            self._connect(upstream, name, port)
        self._order = None
        return op

    def add_sink(
        self,
        name: str,
        inputs: Sequence["str | tuple[str, int]"],
        callback=None,
    ) -> SinkOp:
        """Add a collecting sink; returns it so callers can read results."""
        sink = SinkOp(callback=callback)
        self.add_operator(name, sink, inputs)
        return sink

    def _check_fresh_name(self, name: str) -> None:
        if name in self._nodes or name in self._sources:
            raise OperatorError(f"duplicate node name {name!r}")

    @staticmethod
    def _normalize_input(entry: "str | tuple[str, int]") -> tuple[str, int]:
        if isinstance(entry, str):
            return entry, 0
        upstream, port = entry
        return upstream, int(port)

    def _connect(self, upstream: str, downstream: str, port: int) -> None:
        if upstream in self._sources:
            self._source_edges[upstream].append((downstream, port))
        elif upstream in self._nodes:
            self._nodes[upstream].downstream.append((downstream, port))
        else:
            raise OperatorError(f"unknown upstream node {upstream!r}")

    # -- observability --------------------------------------------------------------

    def stats(self) -> dict[str, tuple[int, int]]:
        """Per-node flow counters: name → (tuples in, tuples out).

        Populated by :meth:`run`; zero before execution. Useful for
        spotting where a deployment's data volume collapses (Point-stage
        early elimination, §3.2) or silently explodes (a join gone
        quadratic).

        After :meth:`fuse`, fused nodes are expanded back into their
        constituent stages (per-stage counters are tracked inside
        :class:`FusedStatelessOp`), so the mapping is keyed by the same
        node names — with the same counts — as an unfused run.
        """
        out: dict[str, tuple[int, int]] = {}
        for name, node in self._nodes.items():
            op = node.op
            if isinstance(op, FusedStatelessOp):
                for stage_name, counts in op.stage_counts.items():
                    out[stage_name] = (counts[0], counts[1])
            else:
                out[name] = (node.tuples_in, node.tuples_out)
        return out

    def describe(self) -> str:
        """A human-readable wiring description of the dataflow.

        One line per node in execution order, showing its operator type,
        upstream sources and flow counters (after a run).
        """
        upstream: dict[str, list[str]] = {name: [] for name in self._nodes}
        for source, edges in self._source_edges.items():
            for target, _port in edges:
                upstream[target].append(f"source:{source}")
        for name, node in self._nodes.items():
            for target, _port in node.downstream:
                upstream[target].append(name)
        lines = ["dataflow:"]
        for name in self._topological_order():
            node = self._nodes[name]
            feeds = ", ".join(sorted(upstream[name])) or "(none)"
            lines.append(
                f"  {name} [{type(node.op).__name__}] <- {feeds}"
                f"  ({node.tuples_in} in / {node.tuples_out} out)"
            )
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------------

    def _topological_order(self) -> list[str]:
        """Topologically sort operator nodes (Kahn's algorithm).

        Ready nodes are visited in lexicographic name order (a heap, not a
        FIFO), so the order — and therefore the interleaving of same-tick
        emissions from parallel per-granule chains — depends only on the
        node names, never on graph construction order. The sharded
        executor's deterministic merge relies on this.
        """
        if self._order is not None:
            return self._order
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for target, _port in node.downstream:
                indegree[target] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            name = heapq.heappop(ready)
            order.append(name)
            for target, _port in self._nodes[name].downstream:
                indegree[target] -= 1
                if indegree[target] == 0:
                    heapq.heappush(ready, target)
        if len(order) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(order))
            raise OperatorError(f"operator graph has a cycle involving {cyclic}")
        self._order = order
        return order

    def fuse(self) -> int:
        """Collapse linear runs of stateless operators into fused kernels.

        A node is absorbed into its successor when (a) both operators
        are stateless (filter/map/union or already fused), (b) the node
        has exactly one downstream edge, on port 0, and (c) the
        successor has exactly one inbound edge overall (so no other
        producer interleaves with the fused stream). The pass repeats
        to a fixed point, so chains of any length collapse into one
        node.

        **Order preservation.** Fusion renames nodes (the fused node
        keeps the *tail* node's name), which could perturb the
        lexicographic-Kahn execution order and thereby the interleaving
        of same-tick emissions at downstream merge points. To keep
        fused output bit-identical, the pre-fusion topological order is
        computed first and the post-fusion order is that same order
        restricted to surviving nodes — a valid topological order of
        the fused graph (contracting a single-in/single-out edge cannot
        invert any precedence), with every surviving node in its
        original relative position.

        Idempotent; returns the number of nodes eliminated. Fusion is
        sticky: it rewrites the graph in place, and later row-mode runs
        execute the fused graph (still bit-identically).
        """
        if self._fused:
            return 0
        original_order = list(self._topological_order())
        eliminated = 0
        changed = True
        while changed:
            changed = False
            for name in list(self._nodes):
                node = self._nodes.get(name)
                if node is None or len(node.downstream) != 1:
                    continue
                target, port = node.downstream[0]
                if port != 0 or target == name:
                    continue
                tnode = self._nodes[target]
                if not (_fusable(node.op) and _fusable(tnode.op)):
                    continue
                inbound = sum(
                    1
                    for other in self._nodes.values()
                    for t, _p in other.downstream
                    if t == target
                )
                inbound += sum(
                    1
                    for edges in self._source_edges.values()
                    for t, _p in edges
                    if t == target
                )
                if inbound != 1:
                    continue
                tnode.op = FusedStatelessOp(
                    _stages_of(name, node.op) + _stages_of(target, tnode.op)
                )
                for other in self._nodes.values():
                    other.downstream = [
                        (target if t == name else t, p)
                        for t, p in other.downstream
                    ]
                for edges in self._source_edges.values():
                    edges[:] = [
                        (target if t == name else t, p) for t, p in edges
                    ]
                del self._nodes[name]
                eliminated += 1
                changed = True
        self._order = [n for n in original_order if n in self._nodes]
        self._fused = True
        return eliminated

    def _resolve_mode(self, mode: "str | None") -> bool:
        """Validate ``mode``, apply fusion if asked; True if columnar."""
        if mode is None:
            mode = "row"
        if mode not in MODES:
            raise OperatorError(
                f"unknown execution mode {mode!r}; expected one of {MODES}"
            )
        if mode == "fused":
            self.fuse()
        return mode != "row"

    def _checked(
        self,
        name: str,
        items: Iterable[StreamTuple],
        collector: TelemetryCollector = NULL_COLLECTOR,
    ) -> Iterator[StreamTuple]:
        """Yield a source's tuples, rejecting timestamp regressions.

        The executor's injection loop and every windowed operator assume
        sources are sorted by timestamp; a violation used to be silently
        accepted and produced quietly wrong windows downstream. The
        rejection is recorded as a ``source_out_of_order`` trace event
        before the raise, so post-mortem trace logs carry the failure.
        """
        last: float | None = None
        for item in items:
            if last is not None and item.timestamp < last - 1e-9:
                collector.event(
                    "source_out_of_order",
                    source=name,
                    timestamp=item.timestamp,
                    previous=last,
                )
                raise OperatorError(
                    f"source {name!r} is out of order: timestamp "
                    f"{item.timestamp:g} arrived after {last:g}"
                )
            last = item.timestamp
            yield item

    def _merged_source(
        self, collector: TelemetryCollector = NULL_COLLECTOR
    ) -> Iterator[tuple[StreamTuple, str]]:
        """Merge all sources into one timestamp-ordered iterator.

        Equal timestamps across sources tie-break on the source *name* —
        a pure function of the data, never of consumption history — so
        that restricting every source to a subset (as sharded execution
        does) cannot reorder the surviving tuples. Within one source,
        arrival order is preserved (at most one heap entry per source).
        """
        heap: list[tuple[float, str, StreamTuple]] = []
        iterators = {
            name: self._checked(name, items, collector)
            for name, items in self._sources.items()
        }
        for name in sorted(iterators):
            first = next(iterators[name], None)
            if first is not None:
                heapq.heappush(heap, (first.timestamp, name, first))
        while heap:
            _ts, name, item = heapq.heappop(heap)
            yield item, name
            nxt = next(iterators[name], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.timestamp, name, nxt))

    def _deliver(self, item: StreamTuple, target: str, port: int) -> None:
        self._nodes[target].pending.append((item, port))

    def _drain_node(
        self,
        node: _Node,
        collector: TelemetryCollector = NULL_COLLECTOR,
        now: float = 0.0,
    ) -> None:
        """Process a node's pending tuples, fanning outputs downstream.

        Pending input is consumed in maximal runs of same-port tuples, one
        :meth:`on_batch` call per run; output order is identical to
        tuple-at-a-time delivery because ``on_batch`` concatenates
        per-tuple outputs in input order. Flow counters account each run
        by its length, so batched and tuple-at-a-time delivery produce
        identical counters by construction; when telemetry is enabled the
        same run lengths feed the collector's batch-size histograms.
        """
        enabled = collector.enabled
        while node.pending:
            batch, node.pending = node.pending, []
            start = 0
            while start < len(batch):
                port = batch[start][1]
                stop = start + 1
                while stop < len(batch) and batch[stop][1] == port:
                    stop += 1
                run = [item for item, _port in batch[start:stop]]
                node.tuples_in += len(run)
                if enabled:
                    began = clock_ns()
                    out = node.op.on_batch(run, port)
                    collector.record_batch(
                        node.name, len(run), len(out), clock_ns() - began
                    )
                    collector.event(
                        "batch_drain",
                        node=node.name,
                        t=now,
                        n_in=len(run),
                        n_out=len(out),
                    )
                else:
                    out = node.op.on_batch(run, port)
                node.tuples_out += len(out)
                for target, tport in node.downstream:
                    for item in out:
                        self._deliver(item, target, tport)
                start = stop

    def _drain_node_columnar(
        self,
        node: _Node,
        collector: TelemetryCollector = NULL_COLLECTOR,
        now: float = 0.0,
    ) -> None:
        """Columnar twin of :meth:`_drain_node`.

        Pending input is partitioned into the *same* maximal same-port
        runs as the row path (payload boundaries don't matter, only
        ports), each run is coalesced into one :class:`ColumnBatch`,
        and the node's column kernel handles it whole. Because run
        partitioning is identical and kernels emit exactly the row
        kernels' tuples, flow counters, batch-size histograms and
        ``batch_drain`` events match the row path exactly — only the
        wall-clock busy-ns can differ.
        """
        enabled = collector.enabled
        while node.pending:
            entries, node.pending = node.pending, []
            start = 0
            while start < len(entries):
                port = entries[start][1]
                stop = start + 1
                while stop < len(entries) and entries[stop][1] == port:
                    stop += 1
                run = coalesce([payload for payload, _port in entries[start:stop]])
                n_in = len(run)
                node.tuples_in += n_in
                if enabled:
                    began = clock_ns()
                    out = node.op.on_column_batch(run, port)
                    collector.record_batch(
                        node.name, n_in, len(out), clock_ns() - began
                    )
                    collector.event(
                        "batch_drain",
                        node=node.name,
                        t=now,
                        n_in=n_in,
                        n_out=len(out),
                    )
                else:
                    out = node.op.on_column_batch(run, port)
                n_out = len(out)
                node.tuples_out += n_out
                if n_out:
                    for target, tport in node.downstream:
                        self._nodes[target].pending.append((out, tport))
                start = stop

    def run(
        self,
        ticks: Iterable[float],
        telemetry: TelemetryCollector | None = None,
        mode: str = "row",
    ) -> None:
        """Execute the dataflow over the given punctuation times.

        All source tuples with timestamp ``<= tick`` are injected before
        that tick's punctuation sweep. Source tuples later than the final
        tick are not delivered.

        Args:
            ticks: Punctuation times, ascending.
            telemetry: Instrumentation sink (see
                :mod:`repro.streams.telemetry`); ``None`` uses the
                process-wide default, which is a no-op unless installed.
            mode: Execution mode, one of :data:`MODES`. ``columnar``
                and ``fused`` run the column-kernel fast path and
                produce bit-identical sink output to ``row``.

        Raises:
            OperatorError: If a source yields out-of-order timestamps,
                or ``mode`` is unknown.
        """
        for _now in self.run_stepped(ticks, telemetry=telemetry, mode=mode):
            pass

    def open_session(
        self,
        ticks: Iterable[float],
        telemetry: TelemetryCollector | None = None,
        mode: str = "row",
    ) -> "FjordSession":
        """Open an incremental-push execution session over ``ticks``.

        Where :meth:`run` pulls whole source iterables, a session is fed
        tuple-by-tuple from outside (a network gateway, a live device
        poller) via :meth:`FjordSession.push` and advances punctuation
        time only as far as the caller's watermark allows — see
        :class:`FjordSession` for the exact equivalence guarantee with
        the pull-based run.

        Sources must already be registered (with empty feeds, typically)
        so their edges exist; pushes are routed by source name.
        """
        columnar = self._resolve_mode(mode)
        return FjordSession(
            self, ticks, resolve_telemetry(telemetry), columnar=columnar
        )

    def run_stepped(
        self,
        ticks: Iterable[float],
        telemetry: TelemetryCollector | None = None,
        mode: str = "row",
    ) -> Iterator[float]:
        """Like :meth:`run`, but yield after each punctuation sweep.

        Yields the punctuation time just processed, with every emission
        for that instant already delivered to the sinks — callers can
        observe (or tag) per-tick output incrementally, which is how the
        sharded executor attributes each shard's output to its tick.

        When telemetry is enabled, every ``on_batch``/``on_time`` call is
        timed into per-operator histograms, and tick boundaries sample
        each node's pending-queue depth (the backpressure gauge) plus
        each source's watermark lag (tick time minus the newest injected
        timestamp). The no-op collector skips all of it behind one flag
        check per call site.
        """
        collector = resolve_telemetry(telemetry)
        enabled = collector.enabled
        columnar = self._resolve_mode(mode)
        order = self._topological_order()
        if enabled:
            self._emit_run_start(order, collector)
        feed = self._merged_source(collector)
        lookahead: tuple[StreamTuple, str] | None = next(feed, None)
        newest: dict[str, float] = {}  # per-source newest injected stamp
        tick_count = 0
        for now in ticks:
            # 1. Inject all due source tuples.
            while lookahead is not None and lookahead[0].timestamp <= now + 1e-9:
                item, source = lookahead
                for target, port in self._source_edges[source]:
                    self._deliver(item, target, port)
                if enabled:
                    collector.count_source(source)
                    newest[source] = item.timestamp
                lookahead = next(feed, None)
            if enabled:
                self._sample_tick(order, now, newest, collector)
            self._sweep(order, now, collector, enabled, columnar)
            tick_count += 1
            yield now
        if enabled:
            self._emit_run_stop(order, tick_count, collector)

    # -- shared run/session machinery -------------------------------------------

    def _emit_run_start(
        self, order: Sequence[str], collector: TelemetryCollector
    ) -> None:
        collector.event(
            "run_start", nodes=len(order), sources=len(self._sources)
        )
        for name in order:
            collector.event(
                "operator_start",
                node=name,
                op=type(self._nodes[name].op).__name__,
            )

    def _emit_run_stop(
        self,
        order: Sequence[str],
        tick_count: int,
        collector: TelemetryCollector,
    ) -> None:
        for name in order:
            node = self._nodes[name]
            collector.event(
                "operator_stop",
                node=name,
                tuples_in=node.tuples_in,
                tuples_out=node.tuples_out,
            )
        collector.event("run_end", ticks=tick_count)

    def _sample_tick(
        self,
        order: Sequence[str],
        now: float,
        newest: Mapping[str, float],
        collector: TelemetryCollector,
    ) -> None:
        """Tick-boundary gauge sampling (watermark lag, queue depths)."""
        for source, stamp in newest.items():
            collector.sample_watermark(source, now - stamp)
        for name in order:
            depth = len(self._nodes[name].pending)
            if depth:
                collector.sample_queue_depth(name, depth)

    def _sweep(
        self,
        order: Sequence[str],
        now: float,
        collector: TelemetryCollector,
        enabled: bool,
        columnar: bool = False,
    ) -> None:
        """One punctuation sweep at time ``now`` over already-injected input.

        Nodes are visited in topological order: drain pending inputs,
        then slide windows; emissions feed later nodes within the same
        sweep. A final drain pass catches anything a terminal node's
        user callback injected (topological order makes it a no-op
        otherwise). Punctuation output is delivered per tuple in both
        modes — the columnar drain coalesces mixed pending payloads.
        """
        drain = self._drain_node_columnar if columnar else self._drain_node
        if not enabled:
            # Fast path: a passive node (base no-op ``on_time``) with an
            # empty queue contributes nothing to this sweep — skip it
            # without touching its operator. Output is byte-identical to
            # the full walk because the skipped calls were provably
            # no-ops; on graphs dominated by stateless stages this turns
            # the per-tick cost from O(nodes) into O(active nodes).
            for name in order:
                node = self._nodes[name]
                if node.pending:
                    drain(node, collector, now)
                if node.passive:
                    continue
                out = node.op.on_time(now)
                if out:
                    node.tuples_out += len(out)
                    for target, tport in node.downstream:
                        for item in out:
                            self._deliver(item, target, tport)
            for name in order:
                node = self._nodes[name]
                if node.pending:
                    drain(node, collector, now)
            return
        for name in order:
            node = self._nodes[name]
            drain(node, collector, now)
            began = clock_ns()
            out = node.op.on_time(now)
            collector.record_punctuation(
                name, len(out), clock_ns() - began
            )
            node.tuples_out += len(out)
            for target, tport in node.downstream:
                for item in out:
                    self._deliver(item, target, tport)
        for name in order:
            drain(self._nodes[name], collector, now)
        collector.count_tick()


class FjordSession:
    """Incremental-push execution of a Fjord dataflow.

    The pull-based :meth:`Fjord.run` owns its input: it merges whole
    source iterables and injects each tuple at the first punctuation
    tick at or after its timestamp. A session inverts that control so a
    live ingress (the :mod:`repro.net` gateway) can *push* tuples as
    they arrive off the wire and advance punctuation time only once its
    reorder buffers promise no earlier tuple can still show up.

    **Equivalence guarantee.** If (a) every tuple is pushed before the
    session sweeps the first tick at or after its timestamp, (b) pushes
    per source are timestamp-ordered, and (c) equal-timestamp pushes
    follow original stream order, then the session's sink output is
    *identical* — tuple for tuple, in order — to ``Fjord.run`` over the
    same data, because injection order (timestamp, then source name,
    then per-source push order) and the per-tick sweep are shared with
    the pull path. Condition (a) is what :meth:`advance`'s watermark
    contract enforces; a violation raises :class:`OperatorError` rather
    than silently producing drifted windows.

    Created by :meth:`Fjord.open_session`; drive it with
    :meth:`push` / :meth:`advance`, then :meth:`close`.
    """

    def __init__(
        self,
        fjord: Fjord,
        ticks: Iterable[float],
        collector: TelemetryCollector,
        columnar: bool = False,
    ):
        self._fjord = fjord
        self._collector = collector
        self._enabled = collector.enabled
        self._columnar = columnar
        self._order = fjord._topological_order()
        self._ticks = [float(t) for t in ticks]
        if any(a > b for a, b in zip(self._ticks, self._ticks[1:])):
            raise OperatorError("session ticks must be ascending")
        self._cursor = 0  # index of the next tick to sweep
        self._heap: list[tuple[float, str, int, StreamTuple]] = []
        self._push_seq = 0
        self._last: dict[str, float] = {}  # per-source newest pushed stamp
        self._newest: dict[str, float] = {}  # per-source newest injected
        #: push_seq → IngestTrace for pushes carrying span correlation.
        self._traces: dict[int, IngestTrace] = {}
        #: Optional ``sink(trace, done_ns)`` called for every finished
        #: trace that carries a cluster context (``trace.ctx``). A
        #: cluster worker's tick ledger hangs its hop-record capture
        #: here; the attribute is runtime wiring, deliberately outside
        #: :meth:`checkpoint` state.
        self.span_sink: "Callable[[IngestTrace, int], None] | None" = None
        self._closed = False
        if self._enabled:
            fjord._emit_run_start(self._order, collector)

    @property
    def safe_time(self) -> float:
        """The last punctuation time swept (``-inf`` before the first).

        Everything at or before this instant has already been processed;
        a push with a timestamp at or below it can no longer be injected
        faithfully and is rejected.
        """
        if self._cursor == 0:
            return float("-inf")
        return self._ticks[self._cursor - 1]

    @property
    def pending(self) -> int:
        """Tuples pushed but not yet injected into the dataflow."""
        return len(self._heap)

    @property
    def ticks(self) -> tuple[float, ...]:
        """The full punctuation schedule this session sweeps."""
        return tuple(self._ticks)

    def push(
        self,
        source: str,
        item: StreamTuple,
        trace: "IngestTrace | None" = None,
    ) -> None:
        """Queue one tuple from ``source`` for injection.

        Args:
            source: The registered source name the tuple belongs to.
            item: The tuple itself.
            trace: Optional span-correlation state (see
                :class:`~repro.streams.telemetry.IngestTrace`). When
                given, the session stamps the injection instant and —
                once the sweep that consumed the tuple completes —
                records the ``session``/``sweep`` phase spans, the
                end-to-end span, and one span-log entry on its
                collector. ``None`` (the uninstrumented default) costs
                a single ``is None`` check.

        Raises:
            OperatorError: If the session is closed, the source is
                unknown, the source's pushes regress in timestamp, or
                the tuple lands at or behind :attr:`safe_time` (it
                arrived after its punctuation tick was already swept —
                the condition a reorder buffer with adequate slack is
                there to prevent).
        """
        if self._closed:
            raise OperatorError("push on a closed FjordSession")
        if source not in self._fjord._source_edges:
            raise OperatorError(f"unknown session source {source!r}")
        last = self._last.get(source)
        if last is not None and item.timestamp < last - 1e-9:
            self._collector.event(
                "source_out_of_order",
                source=source,
                timestamp=item.timestamp,
                previous=last,
            )
            raise OperatorError(
                f"session source {source!r} is out of order: timestamp "
                f"{item.timestamp:g} arrived after {last:g}"
            )
        if item.timestamp <= self.safe_time + 1e-9:
            self._collector.event(
                "session_late_push",
                source=source,
                timestamp=item.timestamp,
                safe_time=self.safe_time,
            )
            raise OperatorError(
                f"tuple from {source!r} at t={item.timestamp:g} arrived "
                f"behind the session's punctuation cursor "
                f"(safe_time={self.safe_time:g}); increase the ingress "
                f"reorder slack"
            )
        heapq.heappush(
            self._heap, (item.timestamp, source, self._push_seq, item)
        )
        if trace is not None:
            self._traces[self._push_seq] = trace
        self._push_seq += 1
        if last is None or item.timestamp > last:
            self._last[source] = item.timestamp

    def advance(self, watermark: float) -> list[float]:
        """Sweep every remaining tick strictly below ``watermark``.

        The caller promises that no future :meth:`push` will carry a
        timestamp more than 1 ns below ``watermark`` (the reorder
        buffers' :attr:`~repro.streams.reorder.ReorderBuffer.watermark`
        is exactly that promise); the extra nanosecond of guard margin
        here absorbs it. Returns the punctuation times swept, in order.
        Monotonicity is not required — a stale watermark simply sweeps
        nothing.
        """
        if self._closed:
            raise OperatorError("advance on a closed FjordSession")
        swept: list[float] = []
        while (
            self._cursor < len(self._ticks)
            and self._ticks[self._cursor] + 2e-9 < watermark
        ):
            swept.append(self._step())
        return swept

    def _step(self) -> float:
        """Inject due tuples and sweep the next tick; returns its time."""
        now = self._ticks[self._cursor]
        fjord = self._fjord
        enabled = self._enabled
        heap = self._heap
        traces = self._traces
        injected: "list[IngestTrace] | None" = None
        while heap and heap[0][0] <= now + 1e-9:
            _ts, source, seq, item = heapq.heappop(heap)
            for target, port in fjord._source_edges[source]:
                fjord._deliver(item, target, port)
            if enabled:
                self._collector.count_source(source)
                self._newest[source] = item.timestamp
            if traces:
                trace = traces.pop(seq, None)
                if trace is not None:
                    trace.t_injected = clock_ns()
                    if injected is None:
                        injected = []
                    injected.append(trace)
        if enabled:
            fjord._sample_tick(self._order, now, self._newest, self._collector)
        fjord._sweep(
            self._order, now, self._collector, enabled, self._columnar
        )
        if injected is not None:
            self._finish_spans(injected, now)
        self._cursor += 1
        return now

    def _finish_spans(self, injected: "list[IngestTrace]", now: float) -> None:
        """Close the spans of every tuple this sweep consumed.

        Every emission a tuple contributed at its tick happened inside
        the sweep that just returned, so its ingest-to-emit journey is
        complete. The four phase durations share boundary stamps and
        therefore sum to the end-to-end duration exactly — the
        accounting invariant the span tests pin.
        """
        collector = self._collector
        sink = self.span_sink
        done = clock_ns()
        for trace in injected:
            if sink is not None and trace.ctx is not None:
                sink(trace, done)
            queue_ns = trace.t_queued - trace.t_ingest
            reorder_ns = trace.t_released - trace.t_queued
            session_ns = trace.t_injected - trace.t_released
            sweep_ns = done - trace.t_injected
            collector.record_span("ingest.queue", queue_ns)
            collector.record_span("ingest.reorder", reorder_ns)
            collector.record_span("ingest.session", session_ns)
            collector.record_span("ingest.sweep", sweep_ns)
            collector.record_span("ingest.e2e", done - trace.t_ingest)
            collector.span(
                ingest_id=trace.ingest_id,
                source=trace.source,
                sim_ts=trace.sim_ts,
                tick=now,
                queue_ns=queue_ns,
                reorder_ns=reorder_ns,
                session_ns=session_ns,
                sweep_ns=sweep_ns,
                e2e_ns=done - trace.t_ingest,
            )

    def checkpoint(self) -> dict:
        """Snapshot the session's execution state for later :meth:`restore`.

        Captures the punctuation cursor, the not-yet-injected tuple heap,
        per-source ordering stamps, span-correlation traces, and — per
        DAG node — the operator's data state (via
        :meth:`~repro.streams.operators.Operator.checkpoint`), its flow
        counters and any pending input. Everything returned is live
        references: serialize synchronously, before the next push or
        advance. Configuration (the graph, ticks, lambdas) is *not*
        captured — restore targets a freshly built identical pipeline.
        """
        nodes: dict[str, dict] = {}
        for name in self._order:
            node = self._fjord._nodes[name]
            nodes[name] = {
                "state": node.op.checkpoint(),
                "tuples_in": node.tuples_in,
                "tuples_out": node.tuples_out,
                "pending": list(node.pending),
            }
        return {
            "cursor": self._cursor,
            "heap": list(self._heap),
            "push_seq": self._push_seq,
            "last": dict(self._last),
            "newest": dict(self._newest),
            "traces": dict(self._traces),
            "nodes": nodes,
        }

    def restore(self, state: Mapping) -> None:
        """Install a :meth:`checkpoint` snapshot into this fresh session.

        Must be called before any push or advance, on a session built
        from the same pipeline with the same tick schedule; execution
        then continues exactly where the snapshot was taken.

        Raises:
            OperatorError: When the snapshot references a node this
                session's dataflow does not have (a configuration
                mismatch — the pipelines are not identical).
        """
        if self._closed:
            raise OperatorError("restore on a closed FjordSession")
        if self._cursor or self._heap or self._push_seq:
            raise OperatorError("restore needs a fresh session")
        for name, entry in state["nodes"].items():
            node = self._fjord._nodes.get(name)
            if node is None:
                raise OperatorError(
                    f"checkpoint names unknown node {name!r}; the restored "
                    f"pipeline does not match the one checkpointed"
                )
            node.op.restore(entry["state"])
            node.tuples_in = entry["tuples_in"]
            node.tuples_out = entry["tuples_out"]
            node.pending[:] = entry["pending"]
        self._cursor = int(state["cursor"])
        # A copy of a valid heap list is itself a valid heap: no heapify.
        self._heap = list(state["heap"])
        self._push_seq = int(state["push_seq"])
        self._last = dict(state["last"])
        self._newest = dict(state["newest"])
        self._traces = dict(state["traces"])

    def close(self) -> None:
        """Sweep all remaining ticks and end the session.

        Call after the last push (end of stream): at that point every
        buffered tuple's tick can safely fire. Idempotent.
        """
        if self._closed:
            return
        while self._cursor < len(self._ticks):
            self._step()
        if self._enabled:
            self._fjord._emit_run_stop(
                self._order, self._cursor, self._collector
            )
        self._closed = True
