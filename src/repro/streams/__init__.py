"""Stream-processing substrate for the ESP reproduction.

This subpackage implements the infrastructure the paper inherits from the
HiFi / TelegraphCQ ecosystem:

- :mod:`repro.streams.tuples` — the timestamped tuple data model.
- :mod:`repro.streams.time` — simulation clock, durations and epochs.
- :mod:`repro.streams.windows` — CQL-style ``Range By`` / ``Rows`` / ``NOW``
  sliding-window machinery.
- :mod:`repro.streams.aggregates` — incremental aggregate functions
  (``count``, ``count distinct``, ``avg``, ``stdev``, ...) and a registry
  for user-defined aggregates.
- :mod:`repro.streams.operators` — relational operators over streams
  (filter, map, windowed group-by, join, union, static-relation join).
- :mod:`repro.streams.fjord` — a Fjord-style pipelined executor that pushes
  tuples and time punctuations through an operator DAG.
- :mod:`repro.streams.shard` — a sharded, batch-pipelined execution engine
  running N independent Fjords (serial, threads or processes backend) with
  a deterministic time-axis merge.
"""

from repro.streams.aggregates import (
    Aggregate,
    AggregateSpec,
    get_aggregate,
    register_aggregate,
)
from repro.streams.fjord import Fjord
from repro.streams.operators import (
    FilterOp,
    MapOp,
    Operator,
    StaticJoinOp,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.incremental import IncrementalWindowedGroupByOp
from repro.streams.reorder import ReorderBuffer, reorder_arrivals
from repro.streams.shard import (
    BACKENDS,
    ShardedRun,
    partition_sources,
    run_sharded,
    set_default_execution,
)
from repro.streams.time import Duration, SimClock, parse_duration
from repro.streams.traceio import read_jsonl, write_jsonl
from repro.streams.tuples import StreamTuple
from repro.streams.windows import NowWindow, RowWindow, SlidingWindow, WindowSpec

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BACKENDS",
    "Duration",
    "FilterOp",
    "Fjord",
    "IncrementalWindowedGroupByOp",
    "MapOp",
    "NowWindow",
    "Operator",
    "ReorderBuffer",
    "RowWindow",
    "ShardedRun",
    "SimClock",
    "SlidingWindow",
    "StaticJoinOp",
    "StreamTuple",
    "UnionOp",
    "WindowSpec",
    "WindowedGroupByOp",
    "get_aggregate",
    "parse_duration",
    "partition_sources",
    "read_jsonl",
    "register_aggregate",
    "reorder_arrivals",
    "run_sharded",
    "set_default_execution",
    "write_jsonl",
]
