"""Stream-processing substrate for the ESP reproduction.

This subpackage implements the infrastructure the paper inherits from the
HiFi / TelegraphCQ ecosystem:

- :mod:`repro.streams.tuples` — the timestamped tuple data model.
- :mod:`repro.streams.time` — simulation clock, durations and epochs.
- :mod:`repro.streams.windows` — CQL-style ``Range By`` / ``Rows`` / ``NOW``
  sliding-window machinery.
- :mod:`repro.streams.aggregates` — incremental aggregate functions
  (``count``, ``count distinct``, ``avg``, ``stdev``, ...) and a registry
  for user-defined aggregates.
- :mod:`repro.streams.operators` — relational operators over streams
  (filter, map, windowed group-by, join, union, static-relation join).
- :mod:`repro.streams.columnar` — the columnar ``ColumnBatch`` encoding
  (parallel columns, lazy tuple materialization) behind the ``columnar``
  and ``fused`` execution modes, plus vectorizable callables.
- :mod:`repro.streams.typedcols` — numpy-typed column storage for
  homogeneous numeric columns (int64/float64, detected at encode time),
  with the pure-list fallback that keeps every result bit-identical
  when numpy is absent.
- :mod:`repro.streams.fjord` — a Fjord-style pipelined executor that pushes
  tuples and time punctuations through an operator DAG, with row,
  columnar and fused (stateless-operator fusion) execution modes.
- :mod:`repro.streams.shard` — a sharded, batch-pipelined execution engine
  running N independent Fjords (serial, threads or processes backend) with
  a deterministic time-axis merge.
- :mod:`repro.streams.telemetry` — zero-dependency runtime instrumentation:
  per-operator metrics, latency/batch-size histograms, queue-depth gauges
  and a structured trace-event log, with shard-aware snapshot merging.
"""

from repro.streams.aggregates import (
    Aggregate,
    AggregateSpec,
    get_aggregate,
    register_aggregate,
)
from repro.streams.columnar import (
    MISSING,
    AddFields,
    ColumnBatch,
    ColumnMap,
    ColumnPredicate,
    FieldCompare,
    SetStream,
)
from repro.streams.fjord import MODES, Fjord, FusedStatelessOp
from repro.streams.operators import (
    FilterOp,
    MapOp,
    Operator,
    StaticJoinOp,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.incremental import IncrementalWindowedGroupByOp
from repro.streams.reorder import ReorderBuffer, reorder_arrivals
from repro.streams.shard import (
    BACKENDS,
    ShardedRun,
    partition_batch,
    partition_sources,
    run_sharded,
    set_default_execution,
)
from repro.streams.telemetry import (
    Histogram,
    InMemoryCollector,
    TelemetryCollector,
    empty_snapshot,
    format_table,
    merge_snapshots,
    set_default_telemetry,
)
from repro.streams.time import Duration, SimClock, parse_duration
from repro.streams.typedcols import (
    numpy_available,
    set_typed_columns,
    storage_stats,
    typed_columns_enabled,
)
from repro.streams.traceio import (
    read_jsonl,
    read_trace_events,
    write_jsonl,
    write_trace_events,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import NowWindow, RowWindow, SlidingWindow, WindowSpec

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "AddFields",
    "BACKENDS",
    "ColumnBatch",
    "ColumnMap",
    "ColumnPredicate",
    "Duration",
    "FieldCompare",
    "FilterOp",
    "Fjord",
    "FusedStatelessOp",
    "Histogram",
    "InMemoryCollector",
    "IncrementalWindowedGroupByOp",
    "MISSING",
    "MODES",
    "MapOp",
    "NowWindow",
    "Operator",
    "ReorderBuffer",
    "RowWindow",
    "SetStream",
    "ShardedRun",
    "SimClock",
    "SlidingWindow",
    "StaticJoinOp",
    "StreamTuple",
    "TelemetryCollector",
    "UnionOp",
    "WindowSpec",
    "WindowedGroupByOp",
    "empty_snapshot",
    "format_table",
    "get_aggregate",
    "merge_snapshots",
    "numpy_available",
    "parse_duration",
    "partition_batch",
    "partition_sources",
    "read_jsonl",
    "read_trace_events",
    "register_aggregate",
    "reorder_arrivals",
    "run_sharded",
    "set_default_execution",
    "set_default_telemetry",
    "set_typed_columns",
    "storage_stats",
    "typed_columns_enabled",
    "write_jsonl",
    "write_trace_events",
]
