"""The RFID shelf-monitoring pipeline (paper §4).

The deployed pipeline is Smooth (Query 2) followed by Arbitrate
(Query 3); the reader's built-in checksum filter plays the Point role
(modelled by :func:`repro.core.operators.point_ops.ghost_filter`) and
Merge is unused because each proximity group holds a single reader.

Every configuration of the paper's Figure 5 ablation is available
through :data:`SHELF_CONFIGS` / :func:`build_shelf_processor`:
``raw``, ``smooth``, ``arbitrate``, ``arbitrate+smooth`` and
``smooth+arbitrate``.

The application query (Query 1 — distinct items per shelf) is evaluated
by :func:`count_series`, which works uniformly over raw annotated
readings, smoothed presence rows and arbitrated attribution rows: at
each reader-granularity time step it counts the distinct tags present
per spatial granule.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.granules import TemporalGranule
from repro.core.operators.arbitrate_ops import max_count_arbitrate
from repro.core.operators.point_ops import ghost_filter
from repro.core.operators.smooth_ops import presence_smoother
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.errors import PipelineError
from repro.scenarios.shelf import ShelfScenario
from repro.streams.tuples import StreamTuple

#: The pipeline configurations of Figure 5, in the paper's display order.
SHELF_CONFIGS = (
    "smooth+arbitrate",
    "arbitrate+smooth",
    "arbitrate",
    "smooth",
    "raw",
)

#: Extension configuration: the self-sizing Smooth window of
#: repro.core.operators.adaptive_ops in place of the fixed granule.
ADAPTIVE_CONFIG = "adaptive+arbitrate"


def build_shelf_processor(
    scenario: ShelfScenario,
    config: str = "smooth+arbitrate",
    granule: "TemporalGranule | None" = None,
    tie_break: str = "weakest",
    point_chain: int = 1,
) -> ESPProcessor:
    """Build the ESP processor for one Figure 5 configuration.

    Args:
        scenario: The shelf scenario providing devices and antenna
            strengths.
        config: One of :data:`SHELF_CONFIGS`.
        granule: Temporal granule override (Figure 6 sweeps it);
            defaults to the scenario's 5-second granule.
        tie_break: Arbitrate tie policy; the paper's calibration uses
            ``"weakest"`` (§4.3.1), the pure Query 3 semantics is
            ``"all"``.
        point_chain: How many copies of the Point stage to chain. The
            ghost filter is idempotent, so any depth cleans
            identically — depths above 1 exist to scale per-tuple CPU
            cost for compute-bound benchmarks (the cluster scale-out
            soak), not to change semantics.

    Raises:
        PipelineError: On an unknown configuration name.
    """
    if config not in SHELF_CONFIGS and config != ADAPTIVE_CONFIG:
        raise PipelineError(
            f"unknown shelf config {config!r}; expected one of "
            f"{SHELF_CONFIGS + (ADAPTIVE_CONFIG,)}"
        )
    if point_chain < 1:
        raise PipelineError(
            f"point_chain must be at least 1, got {point_chain}"
        )
    granule = granule or scenario.temporal_granule
    point = ghost_filter()
    smooth = presence_smoother()
    strength = None if tie_break != "weakest" else scenario.strength
    arbitrate = max_count_arbitrate(tie_break=tie_break, strength=strength)
    if config == "raw":
        sequence = [point]
    elif config == "smooth":
        sequence = [point, smooth]
    elif config == "arbitrate":
        sequence = [point, arbitrate]
    elif config == "smooth+arbitrate":
        sequence = [point, smooth, arbitrate]
    elif config == ADAPTIVE_CONFIG:
        from repro.core.operators.adaptive_ops import adaptive_smoother

        sequence = [point, adaptive_smoother(), arbitrate]
    else:  # arbitrate+smooth — the out-of-order ablation
        sequence = [point, arbitrate, smooth]
    if point_chain > 1:
        extra = [ghost_filter() for _ in range(point_chain - 1)]
        sequence = [sequence[0], *extra, *sequence[1:]]
    pipeline = ESPPipeline("rfid", temporal_granule=granule, sequence=sequence)
    processor = ESPProcessor(scenario.registry)
    processor.add_pipeline(pipeline)
    return processor


def count_series(
    tuples: Sequence[StreamTuple],
    ticks: np.ndarray,
    granules: Sequence[str],
    tick_period: float,
    id_field: str = "tag_id",
    granule_field: str = "spatial_granule",
) -> dict[str, np.ndarray]:
    """Evaluate Query 1 at every time step over a cleaned (or raw) stream.

    Args:
        tuples: Stream rows carrying ``id_field`` and ``granule_field``.
        ticks: The evaluation instants (reader granularity).
        granules: Spatial granule names to report.
        tick_period: Spacing of ``ticks`` (used to bucket timestamps).
        id_field: Distinct-count field (``tag_id``).
        granule_field: Grouping field.

    Returns:
        Granule name → float array of distinct counts per tick.
    """
    n_ticks = len(ticks)
    sets: dict[str, list[set]] = {
        name: [set() for _ in range(n_ticks)] for name in granules
    }
    for row in tuples:
        granule = row.get(granule_field)
        if granule not in sets:
            continue
        index = int(round(row.timestamp / tick_period))
        if 0 <= index < n_ticks:
            sets[granule][index].add(row.get(id_field))
    return {
        name: np.array([len(bucket) for bucket in buckets], dtype=float)
        for name, buckets in sets.items()
    }


def query1_counts(
    scenario: ShelfScenario,
    config: str = "smooth+arbitrate",
    granule: "TemporalGranule | None" = None,
    tie_break: str = "weakest",
    sources: Mapping[str, Sequence[StreamTuple]] | None = None,
) -> dict[str, np.ndarray]:
    """Run one configuration end-to-end and evaluate Query 1.

    Args:
        scenario: The shelf scenario.
        config: Pipeline configuration (see :data:`SHELF_CONFIGS`).
        granule: Temporal granule override.
        tie_break: Arbitrate tie policy.
        sources: Pre-recorded raw streams; defaults to the scenario's
            cached recording so that configurations are compared on
            identical data.

    Returns:
        Granule name → per-tick reported counts (Figure 3's y-values).
    """
    processor = build_shelf_processor(
        scenario, config, granule=granule, tie_break=tie_break
    )
    run = processor.run(
        until=scenario.duration,
        tick=scenario.poll_period,
        sources=sources if sources is not None else scenario.recorded_streams(),
    )
    return count_series(
        run.output,
        scenario.ticks(),
        [g.name for g in scenario.granules],
        scenario.poll_period,
    )
