"""Prebuilt ESP pipelines for the paper's three deployments.

"We anticipate a suite of ESP Operators, implementing different ESP
stages or entire pipelines, that can be used to configure and deploy
cleaning pipelines" (§7) — these modules are those entire pipelines:

- :mod:`repro.pipelines.rfid_shelf` — Smooth + Arbitrate for the retail
  shelf (§4), in every configuration the paper's Figure 5 compares.
- :mod:`repro.pipelines.sensornet` — Point + Merge outlier rejection and
  Smooth + Merge yield recovery for environmental monitoring (§5).
- :mod:`repro.pipelines.digital_home` — per-technology cleaning plus the
  Virtualize person detector (§6).
"""

from repro.pipelines.digital_home import (
    build_declarative_home_processor,
    build_digital_home_processor,
)
from repro.pipelines.rfid_shelf import (
    SHELF_CONFIGS,
    build_shelf_processor,
    count_series,
)
from repro.pipelines.sensornet import (
    build_outlier_processor,
    build_redwood_processor,
)

__all__ = [
    "SHELF_CONFIGS",
    "build_declarative_home_processor",
    "build_digital_home_processor",
    "build_outlier_processor",
    "build_redwood_processor",
    "build_shelf_processor",
    "count_series",
]
