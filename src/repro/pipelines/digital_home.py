"""The digital-home person-detector pipeline (paper §6).

Three per-technology cleaning pipelines — reusing the RFID and sensor
stages of the previous deployments, exactly as the paper emphasizes
(§6.1: "stages from other deployments can be reused") — feed a
deployment-wide Virtualize voting stage (Query 6):

- **RFID**: Point whitelist of the expected badge tags (the static-
  relation join of §6.1), Smooth presence interpolation, then a
  kind-level distinct-tag count whose rows vote when more than one badge
  tag is visible;
- **motes**: per-mote Smooth sliding average of the sound level, Merge
  spatial average over the room's motes; rows vote when the averaged
  noise exceeds the paper's 525 threshold;
- **X10**: Smooth ON-event interpolation per detector, Merge 2-of-3
  distinct-device vote; any resulting row votes.
"""

from __future__ import annotations

from repro.core.operators.merge_ops import k_of_n_vote, spatial_average
from repro.core.operators.point_ops import whitelist
from repro.core.operators.smooth_ops import (
    event_smoother,
    presence_smoother,
    sliding_average,
)
from repro.core.operators.virtualize_ops import voting_detector
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.core.stages import Stage, StageKind
from repro.scenarios.office import NOISE_THRESHOLD, OfficeScenario

#: Stream names Virtualize sees, mirroring the paper's Query 6.
VIRTUALIZE_STREAMS = {
    "mote": "sensors_input",
    "rfid": "rfid_input",
    "x10": "motion_input",
}

#: The kind-level RFID count feeding the >1-distinct-tags vote. Written
#: as a declarative query (Query 1's shape at NOW granularity) to
#: demonstrate mixing CQL and toolkit stages in one pipeline.
_RFID_COUNT_QUERY = """
SELECT spatial_granule, count(distinct tag_id) AS n_tags
FROM rfid_smoothed [Range By 'NOW']
GROUP BY spatial_granule
"""


#: The paper's Query 6, with ``coalesce`` making missing votes explicit
#: zeros (see DESIGN.md on the listing's typos). Used by the fully
#: declarative deployment variant below.
_PERSON_DETECTOR_QUERY = """
SELECT 'Person-in-room' AS event
FROM (SELECT 1 as cnt
      FROM sensors_input [Range By 'NOW']
      WHERE sensors.noise > 525) as sensor_count,
     (SELECT 1 as cnt
      FROM rfid_input [Range By 'NOW']
      HAVING count(distinct tag_id) > 1) as rfid_count,
     (SELECT 1 as cnt
      FROM motion_input [Range By 'NOW']
      WHERE value = 'ON') as motion_count,
WHERE coalesce(sensor_count.cnt, 0) +
      coalesce(rfid_count.cnt, 0) +
      coalesce(motion_count.cnt, 0) >= 2
"""


def build_declarative_home_processor(
    scenario: OfficeScenario,
) -> ESPProcessor:
    """The person detector with Virtualize as the paper's literal Query 6.

    Same per-technology cleaning as
    :func:`build_digital_home_processor`, but the fusion stage is the
    CQL voting query rather than the toolkit's
    :class:`~repro.core.operators.virtualize_ops.VotingDetector` — the
    two variants' accuracies are pinned to each other by the test suite.
    The RFID pipeline stops after Smooth here because Query 6 itself
    performs the distinct-tag count.
    """
    granule = scenario.temporal_granule
    rfid = ESPPipeline(
        "rfid",
        temporal_granule=granule,
        sequence=[
            whitelist("tag_id", scenario.expected_tags),
            presence_smoother(),
        ],
    )
    motes = ESPPipeline(
        "mote",
        temporal_granule=granule,
        sequence=[
            sliding_average(value_field="noise", by=("mote_id",)),
            spatial_average(value_field="noise"),
        ],
    )
    x10 = ESPPipeline(
        "x10",
        temporal_granule=granule,
        sequence=[
            event_smoother(),
            k_of_n_vote(min_devices=2),
        ],
    )
    processor = ESPProcessor(scenario.registry)
    processor.add_pipeline(rfid)
    processor.add_pipeline(motes)
    processor.add_pipeline(x10)
    processor.set_virtualize(
        Stage.from_query(
            StageKind.VIRTUALIZE,
            _PERSON_DETECTOR_QUERY,
            name="query6_person_detector",
        ),
        stream_names=VIRTUALIZE_STREAMS,
    )
    return processor


def build_digital_home_processor(
    scenario: OfficeScenario,
    threshold: int = 2,
    noise_threshold: float = NOISE_THRESHOLD,
    x10_min_devices: int = 2,
) -> ESPProcessor:
    """Assemble the full three-technology person detector.

    Args:
        scenario: The office scenario.
        threshold: Virtualize vote threshold (paper: 2 of 3 receptor
            technologies).
        noise_threshold: Sound level above which the mote stream votes
            (paper Query 6: 525).
        x10_min_devices: Distinct X10 devices required by the Merge vote
            (paper: 2 of 3).

    The processor's output stream carries one detection tuple per tick
    in which at least ``threshold`` technologies voted.
    """
    granule = scenario.temporal_granule
    rfid = ESPPipeline(
        "rfid",
        temporal_granule=granule,
        sequence=[
            whitelist("tag_id", scenario.expected_tags),
            presence_smoother(),
            Stage.from_query(StageKind.ARBITRATE, _RFID_COUNT_QUERY,
                             name="rfid_distinct_count"),
        ],
    )
    motes = ESPPipeline(
        "mote",
        temporal_granule=granule,
        sequence=[
            sliding_average(value_field="noise", by=("mote_id",)),
            spatial_average(value_field="noise"),
        ],
    )
    x10 = ESPPipeline(
        "x10",
        temporal_granule=granule,
        sequence=[
            event_smoother(),
            k_of_n_vote(min_devices=x10_min_devices),
        ],
    )
    detector = voting_detector(
        votes={
            VIRTUALIZE_STREAMS["mote"]: (
                lambda t: (t.get("noise") or 0) > noise_threshold
            ),
            VIRTUALIZE_STREAMS["rfid"]: (
                lambda t: (t.get("n_tags") or 0) > 1
            ),
            VIRTUALIZE_STREAMS["x10"]: None,  # any surviving row votes
        },
        threshold=threshold,
    )
    processor = ESPProcessor(scenario.registry)
    processor.add_pipeline(rfid)
    processor.add_pipeline(motes)
    processor.add_pipeline(x10)
    processor.set_virtualize(detector, stream_names=VIRTUALIZE_STREAMS)
    return processor
