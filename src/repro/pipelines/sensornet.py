"""Sensor-network cleaning pipelines (paper §5).

Two pipelines over wireless sensor motes:

- :func:`build_outlier_processor` — the Intel-lab fail-dirty cleaner
  (§5.1): Point range filter at 50 °C (Query 4) + Merge ±1σ outlier
  rejection within the room's proximity group (Query 5).
- :func:`build_redwood_processor` — the redwood yield-recovery pipeline
  (§5.2): per-mote Smooth (sliding average over the expanded 30-minute
  window) + per-granule Merge (windowed spatial average), individually
  toggleable so the experiment can report yield after each stage.
"""

from __future__ import annotations

from repro.core.operators.merge_ops import sigma_outlier_average, spatial_average
from repro.core.operators.point_ops import range_filter
from repro.core.operators.smooth_ops import sliding_average
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.scenarios.intel_lab import IntelLabScenario
from repro.scenarios.redwood import RedwoodScenario


def build_outlier_processor(
    scenario: IntelLabScenario,
    use_point: bool = True,
    use_merge: bool = True,
    sigma_k: float = 1.0,
    robust: bool = False,
) -> ESPProcessor:
    """The Point + Merge outlier-detection pipeline of §5.1.

    Args:
        scenario: The Intel-lab scenario.
        use_point: Include the Query 4 range filter (temp < 50 °C).
        use_merge: Include the Query 5 ±kσ outlier-rejecting average.
            Smooth is deliberately absent: "it cannot correct for
            extended errors within one sensor" (§5.1); Arbitrate is
            unnecessary with a single spatial granule.
        sigma_k: Rejection radius in deviation units.
        robust: Use the median/MAD ablation variant instead of mean/σ.
    """
    sequence = []
    if use_point:
        sequence.append(range_filter("temp", high=50.0))
    if use_merge:
        if robust:
            from repro.core.operators.merge_ops import mad_outlier_average

            sequence.append(
                mad_outlier_average(
                    window=scenario.temporal_granule.window_seconds,
                    k=sigma_k,
                )
            )
        else:
            sequence.append(
                sigma_outlier_average(
                    window=scenario.temporal_granule.window_seconds,
                    k=sigma_k,
                )
            )
    pipeline = ESPPipeline(
        "mote",
        temporal_granule=scenario.temporal_granule,
        sequence=sequence,
    )
    processor = ESPProcessor(scenario.registry)
    processor.add_pipeline(pipeline)
    return processor


def build_redwood_processor(
    scenario: RedwoodScenario,
    use_smooth: bool = True,
    use_merge: bool = True,
) -> ESPProcessor:
    """The Smooth + Merge yield-recovery pipeline of §5.2.

    Args:
        scenario: The redwood scenario.
        use_smooth: Per-mote sliding average over the expanded 30-minute
            window (§5.2.1).
        use_merge: Per-granule windowed average over the proximity
            group's (smoothed) streams (§5.2.2). The merge window equals
            the 5-minute granule, so each epoch's output draws on that
            epoch's smoothed values.
    """
    sequence = []
    if use_smooth:
        sequence.append(
            sliding_average(
                window=scenario.temporal_granule.window_seconds,
                value_field="temp",
            )
        )
    if use_merge:
        sequence.append(
            spatial_average(
                window=scenario.temporal_granule.seconds,
                value_field="temp",
            )
        )
    pipeline = ESPPipeline(
        "mote",
        temporal_granule=scenario.temporal_granule,
        sequence=sequence,
    )
    processor = ESPProcessor(scenario.registry)
    processor.add_pipeline(pipeline)
    return processor
