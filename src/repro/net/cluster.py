"""Cluster assembly: egress merge, service entry points, process runner.

This module is the glue above :mod:`repro.net.router` and
:mod:`repro.net.worker`:

- :func:`merge_epochs` — the egress merger. Each worker epoch is recast
  as a masked :class:`~repro.streams.shard.ShardResult` (its per-tick
  output, zeroed outside the epoch's tick span) and the lot goes
  through the *existing* deterministic time-axis merge,
  :func:`repro.streams.shard.merge_outputs`. Cluster output is thereby
  byte-identical to a single-node run for any worker count and any
  rebalance history.
- :func:`serve_cluster` — the ``repro cluster`` service loop, the
  cluster-shaped sibling of :func:`repro.net.service.serve_scenario`.
- :func:`run_cluster_processes` — spawn real ``repro worker`` /
  ``repro cluster`` / ``repro feed`` subprocesses and time the run;
  shared by the scale-out benchmark and the bench snapshot harness.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from typing import Any, Callable

from repro.streams.shard import ShardResult, merge_outputs
from repro.streams.telemetry import TelemetryCollector
from repro.streams.tuples import StreamTuple


def merge_epochs(
    epochs: "list[dict[str, Any]]",
    n_ticks: int,
    shard_key: str,
) -> list[StreamTuple]:
    """Merge per-worker, per-epoch tick outputs into one cluster output.

    Args:
        epochs: Epoch records as accumulated by
            :class:`~repro.net.router.ClusterRouter`: each has
            ``start``/``end`` (the half-open tick-index span the epoch
            owns) and ``results`` mapping worker label to a dict with a
            ``per_tick`` mapping of tick index → emitted tuples.
        n_ticks: Total punctuation ticks in the run's schedule.
        shard_key: The scenario's partitioning field; the merge's
            stable-sort key, exactly as in a sharded batch run.

    Every tick index lies in exactly one epoch's span, and within an
    epoch tuples sharing a shard-key value live on exactly one worker,
    so the stable sort reproduces the sequential pipeline's
    interleaving — the same argument as
    :func:`repro.streams.shard.merge_outputs`.
    """
    masked: list[ShardResult] = []
    for record in epochs:
        start = int(record["start"])
        end = min(int(record["end"]), n_ticks)
        for label in sorted(record["results"]):
            worker_ticks = record["results"][label]["per_tick"]
            per_tick: list[list[StreamTuple]] = [
                [] for _ in range(n_ticks)
            ]
            for index in range(start, end):
                bucket = worker_ticks.get(index)
                if bucket:
                    per_tick[index] = list(bucket)
            masked.append(ShardResult(per_tick, {}))
    return merge_outputs(
        masked, order_key=lambda item: str(item.get(shard_key))
    )


async def serve_cluster(
    name: str,
    workers: "list[tuple[str, str, int]]",
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    slack: float = 1.5,
    queue_bound: int = 64,
    duration: "float | None" = None,
    seed: "int | None" = None,
    telemetry: "TelemetryCollector | None" = None,
    ready: "Callable[[str, int], None] | None" = None,
    ops_port: "int | None" = None,
    ops_ready: "Callable[[str, int], None] | None" = None,
    ops_linger: float = 0.0,
    checkpoint_interval: "int | None" = None,
    supervisor: Any = None,
) -> dict[str, Any]:
    """Run one scenario through a worker ring; returns the summary.

    Binds the feeder-facing router, joins the given ``(label, host,
    port)`` workers as epoch 0, waits until every expected source said
    bye and all results are merged, then closes.

    Args:
        ready: Called with the router's bound ``(host, port)`` once it
            accepts feeders — how a caller learns an ephemeral port.
        ops_port: When set, also serve ``/metrics``, ``/healthz``,
            ``/readyz`` and ``/snapshot`` for the router (with the
            cluster-wide telemetry rollup) on this port.
        ops_linger: Keep the ops endpoint up this many seconds after
            the run completes. Cluster spans commit at epoch close, a
            moment before a zero-linger endpoint disappears — the
            grace period lets a scraper take one final ``/metrics``
            scrape that includes them.
        checkpoint_interval: Forwarded to the router — checkpoint each
            worker's state every this many forwarded frames; ``None``
            disables checkpointing (recovery falls back to full
            replay).
        supervisor: Optional :class:`repro.net.recovery.WorkerSupervisor`
            used to respawn dead workers before failing over.
    """
    from repro.net.ops import OpsServer
    from repro.net.router import ClusterRouter
    from repro.net.service import build_bundle

    bundle = build_bundle(name, duration, seed)
    router = ClusterRouter(
        bundle,
        slack=slack,
        queue_bound=queue_bound,
        telemetry=telemetry,
        checkpoint_interval=checkpoint_interval,
        supervisor=supervisor,
    )
    ops_server = None
    ops_address = None
    if ops_port is not None:
        ops_server = OpsServer(router, telemetry=telemetry)
        ops_host, ops_bound = await ops_server.start(host, ops_port)
        ops_address = f"{ops_host}:{ops_bound}"
        if ops_ready is not None:
            ops_ready(ops_host, ops_bound)
    try:
        bound_host, bound_port = await router.start(host, port)
        await router.connect_workers(workers)
        if ready is not None:
            ready(bound_host, bound_port)
        await router.run_until_complete()
        output = router.result()
    finally:
        await router.close()
        if ops_server is not None:
            if ops_linger > 0:
                await asyncio.sleep(ops_linger)
            await ops_server.close()
    return {
        "scenario": name,
        "address": f"{bound_host}:{bound_port}",
        "ops_address": ops_address,
        "workers": [label for label, _host, _port in workers],
        "epochs": router.epochs(),
        "output_tuples": len(output),
        "router": router.stats(),
    }


# -- subprocess orchestration --------------------------------------------------


def _repro_env() -> dict[str, str]:
    """Subprocess environment with ``repro`` importable via PYTHONPATH."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def _await_listening(process: subprocess.Popen, what: str) -> tuple[str, int]:
    """Read a child's stderr until its ``listening on host:port`` line."""
    assert process.stderr is not None
    lines: list[str] = []
    while True:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"{what} exited before announcing its address; stderr:\n"
                + "".join(lines)
            )
        lines.append(line)
        text = line.strip()
        if text.startswith("listening on "):
            host, _, port = text.removeprefix("listening on ").partition(":")
            return host, int(port)


def _drain_stderr(process: subprocess.Popen) -> None:
    """Keep a child's stderr pipe from filling (fire-and-forget)."""
    import threading

    def pump() -> None:
        assert process.stderr is not None
        while process.stderr.readline():
            pass

    threading.Thread(target=pump, daemon=True).start()


def run_cluster_processes(
    scenario: str,
    n_workers: int,
    *,
    duration: "float | None" = None,
    seed: "int | None" = None,
    slack: float = 1.5,
    queue_bound: int = 64,
    timeout: float = 300.0,
) -> dict[str, Any]:
    """Run one scenario through real worker/router/feeder processes.

    Spawns ``n_workers`` ``repro worker`` processes and one ``repro
    cluster`` router on ephemeral loopback ports, replays the
    scenario's recording with ``repro feed``, and waits for the
    router's summary. Returns::

        {"summary": <router summary dict>, "elapsed": <feed-to-summary
         wall seconds>, "tuples_per_sec": <forwarded data frames /
         elapsed>, "workers": n_workers}

    Raises on any child's non-zero exit; always reaps every child.
    """
    import json

    env = _repro_env()
    common = ["--duration", str(duration)] if duration is not None else []
    if seed is not None:
        common += ["--seed", str(seed)]
    children: list[subprocess.Popen] = []
    try:
        worker_args: list[str] = []
        for index in range(n_workers):
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    scenario,
                    "--port",
                    "0",
                    "--label",
                    f"w{index}",
                    "--max-epochs",
                    "1",
                    "--slack",
                    str(slack),
                    "--queue-bound",
                    str(queue_bound),
                    *common,
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            children.append(process)
            host, port = _await_listening(process, f"worker w{index}")
            _drain_stderr(process)
            worker_args += ["--worker", f"w{index}={host}:{port}"]
        router = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                scenario,
                "--port",
                "0",
                *worker_args,
                "--slack",
                str(slack),
                "--queue-bound",
                str(queue_bound),
                *common,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        children.append(router)
        host, port = _await_listening(router, "router")
        _drain_stderr(router)
        started = time.monotonic()
        feed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "feed",
                scenario,
                "--host",
                host,
                "--port",
                str(port),
                *common,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        if feed.returncode != 0:
            raise RuntimeError(f"feeder failed:\n{feed.stderr}")
        stdout, _ = router.communicate(timeout=timeout)
        elapsed = time.monotonic() - started
        if router.returncode != 0:
            raise RuntimeError(f"router exited {router.returncode}")
        summary = json.loads(stdout)
        for process in children[:-1]:
            process.wait(timeout=timeout)
        frames = int(summary["router"]["data_frames"])
        return {
            "summary": summary,
            "elapsed": elapsed,
            "tuples_per_sec": frames / elapsed if elapsed > 0 else 0.0,
            "workers": n_workers,
        }
    finally:
        for process in children:
            if process.poll() is None:
                process.kill()
                process.wait()
