"""The ingestion gateway: a TCP front door for a streaming pipeline.

:class:`IngestGateway` is the network boundary the paper leaves
implicit: an asyncio server that accepts receptor connections speaking
the :mod:`repro.net.protocol` wire format and feeds their readings into
a live :class:`~repro.core.pipeline.ESPStreamSession`. Per source it
maintains:

- a :class:`~repro.net.overload.BoundedIngressQueue` (pluggable
  overload policy — ``block`` propagates backpressure to the sender via
  credit frames; the drop policies shed with exact accounting);
- a :class:`~repro.streams.reorder.ReorderBuffer` with configurable
  slack, restoring timestamp order from network-delayed arrivals;
- liveness state (last frame seen, wall clock) so stale receptors can
  be evicted rather than stalling punctuation forever.

**Time.** Two independent axes, never mixed: *simulation* time rides on
the wire (data frames carry the arrival stamps the feeder's delay model
produced; ordering, slack and punctuation all live here), while *wall*
time exists only for liveness (an injectable ``clock`` so tests never
sleep). Punctuation advances by the watermark rule: a tick is swept
only once every non-final source's reorder-buffer watermark has passed
it, which is exactly the promise that makes the network-fed output
byte-identical to the in-memory batch run.

**Lifecycle.** ``await start()`` → feeders connect, stream, and say
``bye`` per source (or go silent and get evicted via
:meth:`check_liveness`) → ``await run_until_drained()`` resolves once
every expected source is final and drained → ``await close()`` flushes
and returns the completed :class:`~repro.core.pipeline.ESPRun`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, AsyncIterator, Awaitable, Callable, Iterable

from repro.errors import NetError, ProtocolError
from repro.net import protocol
from repro.net.overload import BLOCKED, BoundedIngressQueue, OVERLOAD_POLICIES
from repro.net.protocol import read_frame, write_frame
from repro.streams.reorder import ReorderBuffer
from repro.streams.telemetry import (
    IngestTrace,
    TelemetryCollector,
    clock_ns,
    resolve_telemetry,
)
from repro.streams.tuples import StreamTuple


class _SourceState:
    """Everything the gateway tracks about one receptor id."""

    __slots__ = (
        "name", "queue", "reorder", "last_seen", "owner",
        "final_requested", "final", "evicted", "space", "traces",
    )

    def __init__(
        self,
        name: str,
        queue: BoundedIngressQueue,
        reorder: ReorderBuffer,
        last_seen: float,
    ):
        self.name = name
        self.queue = queue
        self.reorder = reorder
        self.last_seen = last_seen
        self.owner: "asyncio.StreamWriter | None" = None
        self.final_requested = False
        self.final = False
        self.evicted = False
        self.space = asyncio.Event()
        #: id(item) → IngestTrace for tuples currently inside the
        #: reorder buffer. The buffer stores and releases the *same*
        #: objects, so object identity is the correlation key — no
        #: ReorderBuffer API change needed.
        self.traces: dict[int, IngestTrace] = {}


class IngestGateway:
    """Serve a streaming pipeline session over TCP.

    Args:
        session: The push-mode pipeline run to feed — anything with the
            :class:`~repro.core.pipeline.ESPStreamSession` surface
            (``receptor_ids``, ``push``, ``advance``, ``safe_time``,
            ``close``).
        sources: Receptor ids the gateway expects; defaults to the
            session's. Completion requires every one of them to finish
            (clean ``bye`` or liveness eviction).
        slack: Reorder slack, simulation seconds. Size it at or above
            the feeder's maximum network delay for zero late drops.
        policy: Overload policy for every per-source ingress queue
            (see :mod:`repro.net.overload`).
        queue_bound: Per-source ingress queue capacity.
        telemetry: Collector for depth/drop/lag metrics; defaults to
            the process-wide default.
        clock: Wall-clock source for liveness, ``time.monotonic`` by
            default. Injectable so tests control time.
        liveness_timeout: Seconds of silence after which a source is
            eviction-eligible; ``None`` disables eviction.
        liveness_interval: Period of the background eviction sweep.
            ``None`` (default) starts no background task — callers
            drive :meth:`check_liveness` explicitly (how the tests
            stay sleep-free).
        throttle: Optional awaitable hook invoked before each item is
            drained — a test affordance for making the pipeline slower
            than the feeder without wall-clock sleeps.
    """

    def __init__(
        self,
        session: Any,
        sources: "Iterable[str] | None" = None,
        *,
        slack: float = 0.0,
        policy: str = "block",
        queue_bound: int = 64,
        telemetry: "TelemetryCollector | None" = None,
        clock: Callable[[], float] = time.monotonic,
        liveness_timeout: "float | None" = None,
        liveness_interval: "float | None" = None,
        throttle: "Callable[[], Awaitable[None]] | None" = None,
    ):
        if policy not in OVERLOAD_POLICIES:
            raise NetError(
                f"unknown overload policy {policy!r}; "
                f"expected one of {OVERLOAD_POLICIES}"
            )
        self._session = session
        self._expected = tuple(
            sorted(sources) if sources is not None else session.receptor_ids
        )
        if not self._expected:
            raise NetError("gateway needs at least one expected source")
        self.slack = float(slack)
        self.policy = policy
        self.queue_bound = int(queue_bound)
        self.liveness_timeout = liveness_timeout
        self._liveness_interval = liveness_interval
        self._collector = resolve_telemetry(telemetry)
        self._clock = clock
        self._throttle = throttle
        self._states: dict[str, _SourceState] = {}
        self._server: "asyncio.base_events.Server | None" = None
        self._drainer: "asyncio.Task | None" = None
        self._watchdog: "asyncio.Task | None" = None
        self._work = asyncio.Event()
        self._drain_lock = asyncio.Lock()
        self._complete = asyncio.Event()
        self._ever_connected = False
        self._closed = False
        self._started = False
        self._ingest_seq = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port=0`` picks a free ephemeral port (how the loopback tests
        avoid collisions).
        """
        if self._server is not None:
            raise NetError("gateway already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        self._started = True
        self._drainer = asyncio.ensure_future(self._drain_loop())
        if self.liveness_timeout is not None and self._liveness_interval:
            self._watchdog = asyncio.ensure_future(self._watch_loop())
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def run_until_drained(self) -> None:
        """Resolve once every expected source is final and drained."""
        await self._complete.wait()

    async def close(self) -> Any:
        """Stop serving, flush, and return the session's completed run.

        Idempotent; safe to call before every source finished (whatever
        arrived is flushed through the pipeline's remaining ticks).
        """
        if self._closed:
            return self._session.close()
        self._closed = True
        for task in (self._drainer, self._watchdog):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain_once()  # leftovers enqueued since the last pass
        return self._session.close()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: list[_SourceState] = []
        try:
            owned = await self._handshake(reader, writer)
            if owned is None:
                return
            await self._serve_frames(reader, writer, owned)
        except ProtocolError as error:
            await self._bail(writer, str(error))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; liveness eviction covers the fallout
        finally:
            for state in owned or ():
                if state.owner is writer:
                    state.owner = None
            writer.close()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> "list[_SourceState] | None":
        frame = await read_frame(reader)
        if frame is None:
            return None
        if frame.get("type") != "hello":
            await self._bail(
                writer, f"expected hello, got {frame.get('type')!r}"
            )
            return None
        version = frame.get("version")
        if version not in protocol.SUPPORTED_VERSIONS:
            self._count("gateway.version_mismatch")
            await self._bail(
                writer,
                f"protocol version {version!r} unsupported; this gateway "
                f"speaks {sorted(protocol.SUPPORTED_VERSIONS)}",
            )
            return None
        names = frame.get("sources") or []
        unknown = [n for n in names if n not in self._expected]
        if unknown or not names:
            self._count("gateway.bad_hello")
            await self._bail(
                writer,
                f"unknown sources {unknown!r}; expected a non-empty subset "
                f"of {list(self._expected)!r}",
            )
            return None
        now = self._clock()
        owned: list[_SourceState] = []
        for name in names:
            state = self._states.get(name)
            if state is None:
                state = _SourceState(
                    name,
                    BoundedIngressQueue(
                        self.queue_bound, self.policy, label=name,
                        telemetry=self._collector,
                    ),
                    ReorderBuffer(self.slack),
                    now,
                )
                self._states[name] = state
            elif state.owner is not None:
                await self._bail(
                    writer, f"source {name!r} is already connected"
                )
                return None
            state.owner = writer
            state.last_seen = now
            owned.append(state)
        self._ever_connected = True
        credits = None
        if self.policy == "block":
            # A reconnecting source's queue may still hold items; only
            # the remaining room is granted, so in-flight + queued can
            # never exceed the bound.
            credits = {
                state.name: self.queue_bound - len(state.queue)
                for state in owned
            }
        # Echo the client's (accepted) version so a v1 feeder keeps
        # seeing the dialect it asked for.
        await write_frame(writer, protocol.hello_ack(credits, version))
        return owned

    async def _serve_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        owned: list[_SourceState],
    ) -> None:
        states = {state.name: state for state in owned}
        while True:
            frame = await read_frame(reader)
            if frame is None:
                # EOF without bye: the source stays open — the feeder
                # may reconnect, or liveness eviction will finish it.
                return
            kind = frame.get("type")
            if kind == "data":
                state = states.get(frame.get("source"))
                if state is None:
                    raise ProtocolError(
                        f"data frame for source {frame.get('source')!r} "
                        f"not declared in this connection's hello"
                    )
                state.last_seen = self._clock()
                item = protocol.record_to_tuple(frame.get("record") or {})
                arrival = float(frame.get("arrival", item.timestamp))
                trace = None
                ctx = frame.get("trace")
                if self._collector.enabled or ctx is not None:
                    self._ingest_seq += 1
                    trace = IngestTrace(
                        self._ingest_seq, state.name, item.timestamp
                    )
                    if ctx is not None:
                        # Cluster hop context stamped by a tracing
                        # router; t_ingest doubles as the worker-clock
                        # receive stamp for the wire.transit span.
                        trace.ctx = ctx
                entry = (int(frame.get("seq", 0)), arrival, item, trace)
                await self._offer(state, entry)
            elif kind == "heartbeat":
                now = self._clock()
                for name in frame.get("sources") or states:
                    if name in states:
                        states[name].last_seen = now
            elif kind == "bye":
                state = states.get(frame.get("source"))
                if state is None:
                    raise ProtocolError(
                        f"bye for source {frame.get('source')!r} not owned "
                        f"by this connection"
                    )
                state.final_requested = True
                self._work.set()
                await write_frame(writer, protocol.bye_ack(state.name))
            elif not await self._handle_extra(frame, writer, states):
                raise ProtocolError(f"unexpected frame type {kind!r}")

    async def _handle_extra(
        self,
        frame: dict[str, Any],
        writer: asyncio.StreamWriter,
        states: dict[str, _SourceState],
    ) -> bool:
        """Dialect hook: handle a non-core frame; ``True`` if consumed.

        The base gateway speaks only the feeder dialect; the cluster
        worker (:mod:`repro.net.worker`) overrides this to accept the
        router's ``drain`` frame without forking the serve loop.
        """
        return False

    async def _offer(self, state: _SourceState, entry: tuple) -> None:
        while True:
            outcome = state.queue.offer(entry)
            if outcome != BLOCKED:
                break
            # Queue full under the block policy (a well-behaved sender
            # never gets here — credits stop it first). Stalling this
            # read loop is the enforcement: TCP backpressure reaches a
            # sender that ignores credits.
            state.space.clear()
            self._work.set()
            await state.space.wait()
        self._work.set()

    async def _bail(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_frame(writer, protocol.error_frame(reason))
        except (ConnectionError, RuntimeError):
            pass

    # -- draining into the pipeline ------------------------------------------

    async def _drain_loop(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            await self._drain_once()
            self._check_complete()

    async def _drain_once(self) -> None:
        async with self._drain_lock:
            await self._drain_once_locked()

    @contextlib.asynccontextmanager
    async def quiesced(self) -> AsyncIterator[None]:
        """Drain every queued arrival into the session, then hold drains.

        While the context is held, the background drain loop is blocked,
        the ingress queues are empty and the session has processed
        everything received so far — the quiescent point at which
        :meth:`checkpoint` (and the session's own checkpoint) captures a
        consistent cut of the stream.
        """
        async with self._drain_lock:
            await self._drain_once_locked()
            yield

    async def _drain_once_locked(self) -> None:
        granted: dict[str, int] = {}
        for name in sorted(self._states):
            state = self._states[name]
            while len(state.queue):
                if self._throttle is not None:
                    await self._throttle()
                seq, arrival, item, trace = state.queue.take()
                state.space.set()
                if trace is not None:
                    trace.t_queued = clock_ns()
                self._inject(state, arrival, item, seq, trace)
                granted[name] = granted.get(name, 0) + 1
            if state.final_requested and not state.final:
                for released in state.reorder.flush():
                    self._push_released(state, released)
                state.traces.clear()
                state.final = True
        self._advance()
        if self.policy == "block":
            await self._grant_credits(granted)

    def _inject(
        self,
        state: _SourceState,
        arrival: float,
        item: StreamTuple,
        seq: int,
        trace: "IngestTrace | None" = None,
    ) -> None:
        if trace is not None:
            state.traces[id(item)] = trace
            dropped_before = state.reorder.dropped
        for released in state.reorder.push(arrival, item, sequence=seq):
            self._push_released(state, released)
        if trace is not None and state.reorder.dropped > dropped_before:
            # Only the currently-pushed item can be late-dropped, so the
            # counter diff pins the victim: retire its trace unemitted.
            late = state.traces.pop(id(item), None)
            if late is not None:
                self._count(f"gateway.{state.name}.late_dropped")
                self._collector.span(
                    kind="span_dropped", ingest_id=late.ingest_id,
                    source=late.source, sim_ts=late.sim_ts,
                    queue_ns=late.t_queued - late.t_ingest,
                    dropped_ns=clock_ns() - late.t_queued,
                )

    def _push_released(self, state: _SourceState, released: Any) -> None:
        trace = state.traces.pop(id(released), None)
        if trace is None:
            self._session.push(state.name, released)
        else:
            trace.t_released = clock_ns()
            self._session.push(state.name, released, trace=trace)

    def _advance(self) -> None:
        watermark = float("inf")
        for name in self._expected:
            state = self._states.get(name)
            if state is None:
                return  # a source has never connected: hold punctuation
            if state.final:
                continue
            watermark = min(watermark, state.reorder.watermark)
        self._session.advance(watermark)
        if self._collector.enabled:
            safe = self._session.safe_time
            for name, state in self._states.items():
                mark = state.reorder.watermark
                if mark == float("-inf") or mark == float("inf"):
                    continue
                lag = max(0.0, mark - max(safe, 0.0))
                self._collector.sample_watermark(f"gateway:{name}", lag)

    async def _grant_credits(self, granted: dict[str, int]) -> None:
        for name, amount in granted.items():
            state = self._states[name]
            writer = state.owner
            if writer is None:
                continue
            try:
                await write_frame(
                    writer, protocol.credit_frame(name, amount)
                )
                if self._collector.enabled:
                    self._collector.count(
                        f"gateway.{name}.credits_granted", amount
                    )
            except (ConnectionError, RuntimeError):
                pass  # connection died; reconnect re-grants from room

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot per-source ingress state for later :meth:`restore`.

        Call only inside :meth:`quiesced`: the queues are empty then, so
        the snapshot is the reorder buffers (with their span-correlation
        traces re-paired positionally — trace dicts are keyed by object
        identity, which does not survive serialization) plus the
        per-source final/eviction flags and the ingest sequence.
        """
        sources: dict[str, Any] = {}
        for name in sorted(self._states):
            state = self._states[name]
            reorder = state.reorder.checkpoint()
            sources[name] = {
                "reorder": reorder,
                "traces": [
                    state.traces.get(id(item))
                    for _ts, _seq, item in reorder["heap"]
                ],
                "final_requested": state.final_requested,
                "final": state.final,
                "evicted": state.evicted,
            }
        return {"sources": sources, "ingest_seq": self._ingest_seq}

    def restore(self, state: dict[str, Any]) -> None:
        """Install a :meth:`checkpoint` snapshot into this fresh gateway.

        Call before serving any data. The restored heap entries are the
        deserialized tuple objects themselves, so identity-keyed trace
        pairing is rebuilt against them positionally.
        """
        now = self._clock()
        for name, entry in state["sources"].items():
            if name not in self._expected:
                raise NetError(
                    f"checkpoint names unexpected source {name!r}; this "
                    f"gateway expects {list(self._expected)!r}"
                )
            source = self._states.get(name)
            if source is None:
                source = _SourceState(
                    name,
                    BoundedIngressQueue(
                        self.queue_bound, self.policy, label=name,
                        telemetry=self._collector,
                    ),
                    ReorderBuffer(self.slack),
                    now,
                )
                self._states[name] = source
            source.reorder.restore(entry["reorder"])
            source.final_requested = bool(entry["final_requested"])
            source.final = bool(entry["final"])
            source.evicted = bool(entry["evicted"])
            source.traces = {
                id(item): trace
                for (_ts, _seq, item), trace in zip(
                    entry["reorder"]["heap"], entry["traces"]
                )
                if trace is not None
            }
        self._ingest_seq = int(state["ingest_seq"])
        self._ever_connected = True
        self._work.set()

    # -- liveness -------------------------------------------------------------

    def check_liveness(self, now: "float | None" = None) -> list[str]:
        """Evict sources silent for longer than ``liveness_timeout``.

        Args:
            now: Wall-clock reading; defaults to the gateway's clock.

        Returns:
            The names evicted by this sweep. Eviction finalizes the
            source — its buffered readings are flushed through the
            pipeline and punctuation stops waiting on it — and is
            counted on ``gateway.<source>.evicted``.
        """
        if self.liveness_timeout is None:
            return []
        now = self._clock() if now is None else now
        evicted: list[str] = []
        for name, state in self._states.items():
            if state.final or state.final_requested:
                continue
            if now - state.last_seen > self.liveness_timeout:
                state.final_requested = True
                state.evicted = True
                self._count(f"gateway.{name}.evicted")
                if self._collector.enabled:
                    self._collector.event(
                        "net_evicted", source=name,
                        silent_for=now - state.last_seen,
                    )
                evicted.append(name)
        if evicted:
            self._work.set()
        return evicted

    async def _watch_loop(self) -> None:
        while True:
            await asyncio.sleep(self._liveness_interval)
            self.check_liveness()

    # -- accounting -----------------------------------------------------------

    def _count(self, key: str) -> None:
        if self._collector.enabled:
            self._collector.count(key)

    def _check_complete(self) -> None:
        if not self._ever_connected:
            return
        for name in self._expected:
            state = self._states.get(name)
            if state is None or not state.final or len(state.queue):
                return
        self._complete.set()

    def readiness(self) -> dict[str, Any]:
        """Readiness verdict for the ops plane's ``/readyz``.

        Ready means: the gateway is started, at least one receptor has
        connected, every expected source has been seen, and no ingress
        queue is sitting at its bound (overload). Each failed condition
        contributes one human-readable reason.
        """
        reasons: list[str] = []
        if not self._started:
            reasons.append("gateway not started")
        if not self._ever_connected:
            reasons.append("no receptor has connected yet")
        else:
            missing = [
                name for name in self._expected
                if name not in self._states
            ]
            if missing:
                reasons.append(f"sources never connected: {missing}")
        for name in sorted(self._states):
            state = self._states[name]
            if not state.final and len(state.queue) >= state.queue.bound:
                reasons.append(f"ingress queue {name!r} at bound (overload)")
        return {"ready": not reasons, "reasons": reasons}

    def stats(self) -> dict[str, Any]:
        """Per-source ingestion accounting (plain data, JSON-friendly)."""
        sources = {}
        for name in sorted(self._states):
            state = self._states[name]
            sources[name] = {
                "offered": state.queue.offered,
                "delivered": state.queue.delivered,
                "dropped_overload": state.queue.dropped,
                "blocked": state.queue.blocked,
                "depth": len(state.queue),
                "max_depth": state.queue.max_depth,
                "dropped_late": state.reorder.dropped,
                "released": state.reorder.released,
                "final": state.final,
                "evicted": state.evicted,
            }
        return {
            "policy": self.policy,
            "queue_bound": self.queue_bound,
            "slack": self.slack,
            "sources": sources,
        }
