"""Replay a recorded scenario over the wire, network warts included.

:class:`ReplayFeeder` is the client half of the ingestion loop: it takes
a scenario recording (receptor id → sense-time readings), pushes it
through the :mod:`repro.receptors.network` impairment models — bursty
loss via a Gilbert–Elliott channel, delivery delay via the truncated
exponential — and streams the surviving readings to an
:class:`~repro.net.gateway.IngestGateway` in *arrival* order, each data
frame stamped with its simulated arrival time and per-source sequence
number (the gateway's reorder buffers use both to reconstruct the
original stream, ties included).

Robustness mirrors a field data-collection agent: exponential-backoff
reconnection when the gateway drops mid-stream (at-least-once resend of
the in-doubt frame), credit-gated sending under the gateway's ``block``
policy, optional heartbeats, and a clean per-source ``bye`` handshake.
The event-loop primitives (``sleep``, ``clock``) are injectable so the
test suite replays instantly with a fake clock — no real sleeps.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Awaitable, Callable, Mapping, Sequence

from repro.errors import FrameTruncated, NetError
from repro.net import protocol
from repro.net.protocol import read_frame, write_frame
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple


class ReplayFeeder:
    """Stream a recording to a gateway with simulated network effects.

    Args:
        host: Gateway host.
        port: Gateway port.
        streams: Receptor id → readings in sense-time order (a scenario
            ``recorded_streams()`` mapping).
        delay_model: Optional ``sample() -> float`` delay source
            (:class:`~repro.receptors.network.DelayModel`); without one
            readings "arrive" at their own timestamps.
        channel: Optional ``deliver() -> bool`` loss process
            (:class:`~repro.receptors.network.GilbertElliottChannel`);
            lost readings are counted per source, their sequence
            numbers consumed (gaps on the wire are normal).
        rate: Replay speed as a multiple of simulation time — ``2.0``
            replays a 60 s trace in ~30 s of wall time. ``None``
            (default) replays as fast as the gateway accepts.
        heartbeat_interval: Wall seconds between heartbeat frames;
            ``None`` sends none (loopback replays don't idle).
        max_attempts: Consecutive failed connection attempts tolerated
            before :meth:`run` raises.
        backoff_base: First reconnection delay, seconds; doubles per
            consecutive failure.
        backoff_cap: Upper bound on the pre-jitter reconnection delay.
        backoff_jitter: Uniform multiplicative jitter fraction — the
            actual delay is ``delay * (1 + jitter * U[0, 1))``, so a
            fleet of feeders knocked over by one gateway restart does
            not reconnect in lockstep. ``0.0`` (default) keeps the
            delay exactly reproducible without a seed.
        backoff_seed: Seed for the jitter draws (deterministic tests).
        sleep: Injectable ``async sleep(seconds)``; defaults to
            :func:`asyncio.sleep`.
        clock: Injectable wall clock for pacing; defaults to
            :func:`time.monotonic`.
        telemetry: Collector mirroring the replay accounting onto
            ``feeder.*`` counters (``feeder.<source>.sent`` /
            ``.lost``, ``feeder.reconnects``, ``feeder.blocked_waits``,
            ``feeder.credit_frames``, ``feeder.pacing_stalls``);
            defaults to the process-wide default (usually a no-op).
    """

    def __init__(
        self,
        host: str,
        port: int,
        streams: Mapping[str, Sequence[StreamTuple]],
        *,
        delay_model: Any = None,
        channel: Any = None,
        rate: "float | None" = None,
        heartbeat_interval: "float | None" = None,
        max_attempts: int = 6,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        backoff_jitter: float = 0.0,
        backoff_seed: int = 0,
        sleep: "Callable[[float], Awaitable[None]] | None" = None,
        clock: "Callable[[], float] | None" = None,
        telemetry: "TelemetryCollector | None" = None,
    ):
        if not streams:
            raise NetError("feeder needs at least one source stream")
        if rate is not None and rate <= 0:
            raise NetError(f"rate must be positive, got {rate}")
        if max_attempts < 1:
            raise NetError(f"max_attempts must be >= 1, got {max_attempts}")
        self.host = host
        self.port = port
        self.streams = {name: list(items) for name, items in streams.items()}
        self.delay_model = delay_model
        self.channel = channel
        self.rate = rate
        self.heartbeat_interval = heartbeat_interval
        if backoff_jitter < 0:
            raise NetError(
                f"backoff_jitter must be >= 0, got {backoff_jitter}"
            )
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_jitter = float(backoff_jitter)
        self._backoff_random = random.Random(backoff_seed)
        #: The most recent reconnection delay actually slept, seconds.
        self.last_backoff = 0.0
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._clock = clock if clock is not None else time.monotonic
        self._collector = resolve_telemetry(telemetry)
        # accounting (attributes are the source of truth; the collector
        # mirrors every increment onto feeder.* counters)
        self.sent = {name: 0 for name in self.streams}
        self.lost = {name: 0 for name in self.streams}
        self.reconnects = 0
        self.blocked_waits = 0
        self.credit_frames = 0
        self.pacing_stalls = 0
        # per-connection shared state (sender ⇄ read loop)
        self._credits: "dict[str, int] | None" = None
        self._credit_event = asyncio.Event()
        self._acked: set[str] = set()
        self._dead = False
        self._error: "str | None" = None

    # -- schedule -------------------------------------------------------------

    def _build_schedule(self) -> list[tuple[float, str, int, StreamTuple]]:
        """Apply loss and delay; return arrivals sorted for replay.

        The sort key ``(arrival, source, seq)`` makes the wire order a
        pure function of the impairment draws — reruns with the same
        seeds replay byte-identically.
        """
        schedule: list[tuple[float, str, int, StreamTuple]] = []
        for name in sorted(self.streams):
            for seq, item in enumerate(self.streams[name]):
                if self.channel is not None and not self.channel.deliver():
                    self.lost[name] += 1
                    self._count(f"feeder.{name}.lost")
                    continue
                delay = (
                    float(self.delay_model.sample())
                    if self.delay_model is not None
                    else 0.0
                )
                schedule.append((item.timestamp + delay, name, seq, item))
        schedule.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return schedule

    # -- the replay loop ------------------------------------------------------

    async def run(self) -> dict[str, Any]:
        """Replay the whole recording; returns the delivery report.

        Raises:
            NetError: After ``max_attempts`` consecutive connection
                failures, or when the gateway rejects the handshake.
        """
        schedule = self._build_schedule()
        index = 0
        attempts = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except OSError:
                attempts += 1
                if attempts >= self.max_attempts:
                    raise NetError(
                        f"gateway {self.host}:{self.port} unreachable "
                        f"after {attempts} attempts"
                    ) from None
                await self._sleep(self._backoff(attempts))
                continue
            attempts = 0
            tasks: list[asyncio.Task] = []
            try:
                await self._handshake(reader, writer)
                tasks.append(asyncio.ensure_future(self._read_loop(reader)))
                if self.heartbeat_interval is not None:
                    tasks.append(
                        asyncio.ensure_future(self._heartbeat_loop(writer))
                    )
                index = await self._send_from(writer, schedule, index)
                await self._finish(writer)
                return self.report()
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                FrameTruncated,
            ):
                self.reconnects += 1
                self._count("feeder.reconnects")
            finally:
                for task in tasks:
                    task.cancel()
                # Wait the cancellations out before touching shared
                # state: a merely-requested cancel lets the old read
                # loop's ``finally`` run a cycle later and re-poison
                # ``_dead`` under the next connection.
                await asyncio.gather(*tasks, return_exceptions=True)
                writer.close()
                self._credits = None
                self._dead = False

    def _backoff(self, attempts: int) -> float:
        delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempts - 1))
        delay *= 1.0 + self.backoff_jitter * self._backoff_random.random()
        self.last_backoff = delay
        return delay

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await write_frame(writer, protocol.hello(self.streams))
        ack = await read_frame(reader)
        if ack is None:
            raise ConnectionResetError("gateway closed during handshake")
        if ack.get("type") == "error":
            raise NetError(f"gateway rejected session: {ack.get('reason')}")
        if ack.get("type") != "hello_ack":
            raise NetError(f"expected hello_ack, got {ack.get('type')!r}")
        credits = ack.get("credits")
        self._credits = dict(credits) if credits is not None else None
        self._acked = set()
        self._error = None

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "credit":
                    self.credit_frames += 1
                    self._count("feeder.credit_frames")
                    if self._credits is not None:
                        source = frame.get("source")
                        self._credits[source] = (
                            self._credits.get(source, 0)
                            + int(frame.get("credits", 0))
                        )
                    self._credit_event.set()
                elif kind == "bye_ack":
                    self._acked.add(frame.get("source"))
                    self._credit_event.set()
                elif kind == "error":
                    self._error = str(frame.get("reason"))
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            FrameTruncated,
            NetError,
        ):
            pass
        finally:
            self._dead = True
            self._credit_event.set()

    async def _heartbeat_loop(self, writer: asyncio.StreamWriter) -> None:
        while True:
            await self._sleep(self.heartbeat_interval)
            await write_frame(writer, protocol.heartbeat(self.streams))

    async def _send_from(
        self,
        writer: asyncio.StreamWriter,
        schedule: list[tuple[float, str, int, StreamTuple]],
        index: int,
    ) -> int:
        wall_start = self._clock()
        sim_start = schedule[index][0] if index < len(schedule) else 0.0
        while index < len(schedule):
            arrival, source, seq, item = schedule[index]
            if self.rate is not None:
                target = wall_start + (arrival - sim_start) / self.rate
                pause = target - self._clock()
                if pause > 0:
                    self.pacing_stalls += 1
                    self._count("feeder.pacing_stalls")
                    await self._sleep(pause)
            await self._acquire_credit(source)
            await write_frame(
                writer, protocol.data_frame(source, seq, arrival, item)
            )
            self.sent[source] += 1
            self._count(f"feeder.{source}.sent")
            index += 1
        return index

    async def _acquire_credit(self, source: str) -> None:
        if self._credits is None:
            return
        while self._credits.get(source, 0) <= 0:
            if self._dead:
                if self._error is not None:
                    raise NetError(f"gateway error: {self._error}")
                raise ConnectionResetError("gateway closed mid-stream")
            self.blocked_waits += 1
            self._count("feeder.blocked_waits")
            self._credit_event.clear()
            await self._credit_event.wait()
        self._credits[source] -= 1

    async def _finish(self, writer: asyncio.StreamWriter) -> None:
        """Send per-source byes and wait for every acknowledgement."""
        for name in sorted(self.streams):
            if name not in self._acked:
                await write_frame(writer, protocol.bye(name))
        while not set(self.streams) <= self._acked:
            if self._dead:
                if self._error is not None:
                    raise NetError(f"gateway error: {self._error}")
                raise ConnectionResetError("gateway closed before bye_ack")
            self._credit_event.clear()
            await self._credit_event.wait()

    def _count(self, key: str) -> None:
        if self._collector.enabled:
            self._collector.count(key)

    def report(self) -> dict[str, Any]:
        """Delivery accounting for the replay so far."""
        return {
            "sent": dict(self.sent),
            "lost": dict(self.lost),
            "reconnects": self.reconnects,
            "blocked_waits": self.blocked_waits,
            "credit_frames": self.credit_frames,
            "pacing_stalls": self.pacing_stalls,
            "reconnect_backoff_ms": round(self.last_backoff * 1000, 3),
        }
