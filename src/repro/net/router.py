"""The cluster front tier: route feeder streams onto a worker ring.

:class:`ClusterRouter` accepts ordinary feeder connections — the exact
versioned wire protocol a standalone gateway speaks, so every existing
feeder works unchanged — and forwards each data frame to the worker
owning its *shard key* on a consistent-hash ring
(:class:`repro.net.ring.HashRing`). The shard key is the scenario's
batch-sharding key (:attr:`repro.net.service.ScenarioBundle.shard_key`),
so keys whose tuples must share stateful pipeline stages always land on
one worker. Forwarding relays the frame's raw JSON payload verbatim
(:func:`repro.net.protocol.write_raw_frame`) — the router's hot path
never re-encodes.

**Epochs and rebalance.** Worker membership is versioned by *epoch*.
Every membership change (join or leave) runs the same handoff:

1. **Credit freeze** — the forwarding gate closes; feeder credits are
   only re-granted after a forward, so feeders stall within one credit
   window while in-flight forwards complete.
2. **Boundary** — the epoch boundary tick ``B`` is the first tick not
   strictly covered by the cluster watermark ``W = min over non-final
   sources of (newest arrival − slack)``. Every tuple timestamped
   inside a tick below ``B`` has provably reached its old owner (a
   frame still in flight has arrival ≥ newest seen, hence timestamp
   ≥ W under the same slack ≥ delay contract a single gateway needs).
3. **Drain** — each worker gets a ``drain`` frame: reorder-buffer
   flush, punctuation swept to the end, per-tick results shipped back.
   Only ticks in ``[epoch start, B)`` will be taken from this epoch.
4. **Remap + replay** — the ring is rebuilt over the new membership
   and the router replays its retained input history (every data frame
   since the run began, per source in arrival order) to the new
   epoch's fresh sessions, followed by byes for already-final sources.
   Ticks from ``B`` on will be taken from the new epoch, whose workers
   have, by construction, each key's *complete* history.

No tuple is lost (the history replay is total) and none is duplicated
(each tick index is taken from exactly one epoch) — the egress merge
(:func:`repro.net.cluster.merge_epochs`) stays byte-identical to a
single-node run.
"""

from __future__ import annotations

import asyncio
import time
from bisect import bisect_left
from typing import Any, Callable

from repro.errors import NetError, ProtocolError
from repro.net import protocol
from repro.net.protocol import (
    read_frame,
    read_frame_raw,
    write_frame,
    write_raw_frame,
)
from repro.net.ring import HashRing
from repro.net.service import ScenarioBundle
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple

#: Shard keys that are a property of the *source* (device), not of the
#: individual reading — mirrors ESPProcessor's key-extractor rule. For
#: these the router can partition whole sources across workers; for
#: record-level keys every worker must accept every source.
SOURCE_LEVEL_KEYS = ("spatial_granule", "proximity_group")


class _RetainedFrame:
    """One data frame kept for epoch replay."""

    __slots__ = ("arrival", "seq", "source", "key", "payload")

    def __init__(
        self, arrival: float, seq: int, source: str, key: str, payload: bytes
    ):
        self.arrival = arrival
        self.seq = seq
        self.source = source
        self.key = key
        self.payload = payload


class _WorkerLink:
    """The router's live connection to one worker for one epoch."""

    def __init__(self, label: str, host: str, port: int):
        self.label = label
        self.host = host
        self.port = port
        self.reader: "asyncio.StreamReader | None" = None
        self.writer: "asyncio.StreamWriter | None" = None
        self.sources: tuple[str, ...] = ()
        self.credits: dict[str, int] = {}
        self.granted = asyncio.Condition()
        self.acked: set[str] = set()
        self.per_tick: dict[int, list[StreamTuple]] = {}
        self.end: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self.task: "asyncio.Task | None" = None

    async def acquire(self, source: str) -> None:
        """Take one worker credit for ``source`` (block until granted)."""
        async with self.granted:
            await self.granted.wait_for(
                lambda: self.credits.get(source, 0) > 0
            )
            self.credits[source] -= 1

    async def read_loop(self) -> None:
        """Consume worker→router frames: credits, acks, results."""
        assert self.reader is not None
        try:
            while True:
                frame = await read_frame(self.reader)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "credit":
                    async with self.granted:
                        name = frame.get("source")
                        self.credits[name] = (
                            self.credits.get(name, 0)
                            + int(frame.get("credits", 0))
                        )
                        self.granted.notify_all()
                elif kind == "bye_ack":
                    self.acked.add(frame.get("source"))
                elif kind == "result":
                    bucket = self.per_tick.setdefault(
                        int(frame.get("tick", 0)), []
                    )
                    bucket.extend(
                        protocol.record_to_tuple(record)
                        for record in frame.get("records") or []
                    )
                elif kind == "result_end":
                    if not self.end.done():
                        self.end.set_result(frame)
                    break
                elif kind == "error":
                    raise NetError(
                        f"worker {self.label!r}: {frame.get('reason')}"
                    )
                else:
                    raise ProtocolError(
                        f"unexpected frame {kind!r} from worker "
                        f"{self.label!r}"
                    )
        except Exception as error:  # surface to whoever awaits results
            if not self.end.done():
                self.end.set_exception(error)
        else:
            if not self.end.done():
                self.end.set_exception(
                    NetError(
                        f"worker {self.label!r} closed before result_end"
                    )
                )

    async def close(self) -> None:
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
        if self.writer is not None:
            self.writer.close()
        if not self.end.done():
            # Nobody will resolve it now; keep await-ers from hanging.
            self.end.set_exception(NetError("worker link closed"))
        self.end.exception()  # retrieved: never "never awaited" noise


class ClusterRouter:
    """Front-tier server distributing feeder streams across workers.

    Args:
        bundle: The scenario being served; provides the expected
            sources, the shard key, and the punctuation schedule the
            epoch bookkeeping is expressed in.
        slack: Reorder slack, simulation seconds — the same contract as
            a single gateway: at or above the feeders' maximum delay.
            Used for worker gateways' buffers *and* the rebalance
            boundary watermark.
        queue_bound: Credit window per source, both feeder-facing and
            per worker connection.
        telemetry: Cluster-wide rollup collector; absorbs every worker
            epoch snapshot under its worker label.
        clock: Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        bundle: ScenarioBundle,
        *,
        slack: float = 0.0,
        queue_bound: int = 64,
        telemetry: "TelemetryCollector | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._bundle = bundle
        self.slack = float(slack)
        self.queue_bound = int(queue_bound)
        self._collector = resolve_telemetry(telemetry)
        self._clock = clock
        self._expected = tuple(sorted(bundle.streams))
        if not self._expected:
            raise NetError("router needs at least one expected source")
        self._key_fn = bundle.processor.shard_key_fn(bundle.shard_key)
        self._source_level = bundle.shard_key in SOURCE_LEVEL_KEYS
        self._ticks = bundle.processor.punctuation_ticks(
            bundle.until, bundle.tick
        )
        self._server: "asyncio.base_events.Server | None" = None
        self._links: dict[str, _WorkerLink] = {}
        self._ring: "HashRing | None" = None
        self._epoch = -1
        self._epoch_start = 0
        self._epochs: list[dict[str, Any]] = []
        self._history: dict[str, list[_RetainedFrame]] = {
            name: [] for name in self._expected
        }
        self._max_arrival: dict[str, float] = {}
        self._final: set[str] = set()
        self._owners: dict[str, asyncio.StreamWriter] = {}
        self._gate = asyncio.Event()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._rebalance = asyncio.Lock()
        self._all_final = asyncio.Event()
        self._finished = False
        self._started = False
        self._ever_connected = False
        self.data_frames = 0
        self._offered: dict[str, int] = {}
        self._frame_waiters: list[asyncio.Event] = []

    # -- lifecycle ----------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the feeder-facing listener; returns ``(host, port)``.

        Feeders may connect immediately; their data stalls on the
        forwarding gate until :meth:`connect_workers` establishes
        epoch 0.
        """
        if self._server is not None:
            raise NetError("router already started")
        self._server = await asyncio.start_server(
            self._handle_feeder, host, port
        )
        self._started = True
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def connect_workers(
        self, workers: "list[tuple[str, str, int]]"
    ) -> None:
        """Establish epoch 0 over ``(label, host, port)`` workers."""
        if self._epoch >= 0:
            raise NetError(
                "workers already connected; use add_worker/remove_worker"
            )
        async with self._rebalance:
            await self._open_epoch(
                {label: (host, port) for label, host, port in workers}, 0
            )
            self._gate.set()

    async def add_worker(self, label: str, host: str, port: int) -> None:
        """Join ``label`` to the ring via a full epoch handoff."""
        if label in self._links:
            raise NetError(f"worker {label!r} already in the ring")
        membership = {
            link.label: (link.host, link.port)
            for link in self._links.values()
        }
        membership[label] = (host, port)
        await self._rebalance_to(membership)

    async def remove_worker(self, label: str) -> None:
        """Retire ``label`` from the ring via a full epoch handoff."""
        if label not in self._links:
            raise NetError(f"worker {label!r} is not in the ring")
        membership = {
            link.label: (link.host, link.port)
            for link in self._links.values()
            if link.label != label
        }
        if not membership:
            raise NetError("cannot remove the last worker")
        await self._rebalance_to(membership)

    async def run_until_complete(self) -> None:
        """Resolve once every source is final and all results are in."""
        await self._all_final.wait()
        async with self._rebalance:
            if self._finished:
                return
            self._gate.clear()
            if self._inflight:
                self._idle.clear()
                await self._idle.wait()
            await self._close_epoch(len(self._ticks))
            self._finished = True

    async def close(self) -> None:
        """Stop listening and tear down worker links."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._links.values()):
            await link.close()
        self._links = {}

    def result(self) -> list[StreamTuple]:
        """The merged, deterministic cluster output (after completion)."""
        from repro.net.cluster import merge_epochs

        if not self._finished:
            raise NetError("cluster run has not completed")
        return merge_epochs(
            self._epochs, len(self._ticks), self._bundle.shard_key
        )

    def epochs(self) -> list[dict[str, Any]]:
        """Per-epoch records: span, workers, stats (for summaries)."""
        return [
            {
                "epoch": record["epoch"],
                "start_tick": record["start"],
                "end_tick": record["end"],
                "workers": sorted(record["results"]),
            }
            for record in self._epochs
        ]

    # -- rebalance ----------------------------------------------------------

    async def _rebalance_to(
        self, membership: "dict[str, tuple[str, int]]"
    ) -> None:
        if self._epoch < 0:
            raise NetError("connect_workers must establish epoch 0 first")
        async with self._rebalance:
            if self._finished:
                raise NetError("cluster run already completed")
            self._gate.clear()
            if self._inflight:
                self._idle.clear()
                await self._idle.wait()
            boundary = self._boundary()
            await self._close_epoch(boundary)
            await self._open_epoch(membership, boundary)
            self._gate.set()

    def _boundary(self) -> int:
        """First tick index the *next* epoch's output will be taken from."""
        watermark = float("inf")
        for name in self._expected:
            if name in self._final:
                continue
            seen = self._max_arrival.get(name)
            if seen is None:
                watermark = float("-inf")
                break
            watermark = min(watermark, seen - self.slack)
        if watermark == float("inf"):
            boundary = len(self._ticks)
        else:
            # Same strictly-below sweep rule (and float tolerance) as
            # FjordSession.advance: ticks with tick + 2e-9 < watermark.
            boundary = bisect_left(
                [tick + 2e-9 for tick in self._ticks], watermark
            )
        return min(max(boundary, self._epoch_start), len(self._ticks))

    async def _close_epoch(self, boundary: int) -> None:
        results: dict[str, dict[str, Any]] = {}
        for label in sorted(self._links):
            link = self._links[label]
            try:
                assert link.writer is not None
                await write_frame(link.writer, protocol.drain())
            except (ConnectionError, RuntimeError):
                pass  # already completing; result_end settles it either way
        for label in sorted(self._links):
            link = self._links[label]
            end = await link.end
            results[label] = {
                "per_tick": link.per_tick,
                "ticks": int(end.get("ticks", 0)),
                "stats": end.get("stats") or {},
            }
            snapshot = end.get("telemetry")
            if snapshot and self._collector.enabled:
                self._collector.absorb(snapshot, node=label)
        self._epochs.append(
            {
                "epoch": self._epoch,
                "start": self._epoch_start,
                "end": boundary,
                "results": results,
            }
        )
        for link in list(self._links.values()):
            await link.close()
        self._links = {}
        self._epoch_start = boundary

    async def _open_epoch(
        self, membership: "dict[str, tuple[str, int]]", start_tick: int
    ) -> None:
        if not membership:
            raise NetError("cluster needs at least one worker")
        self._epoch += 1
        ring = HashRing(membership)
        self._ring = ring
        if self._source_level:
            assigned: dict[str, list[str]] = {
                label: [] for label in membership
            }
            for name in self._expected:
                key = str(self._key_fn(name, None))
                assigned[ring.owner(key)].append(name)
        else:
            assigned = {
                label: list(self._expected) for label in membership
            }
        links: dict[str, _WorkerLink] = {}
        try:
            for label in sorted(membership):
                host, port = membership[label]
                link = _WorkerLink(label, host, port)
                links[label] = link
                link.reader, link.writer = await asyncio.open_connection(
                    host, port
                )
                link.sources = tuple(assigned[label])
                await write_frame(link.writer, protocol.worker_hello(label))
                await write_frame(
                    link.writer,
                    protocol.route(self._epoch, start_tick, link.sources),
                )
                ack = await read_frame(link.reader)
                if ack is None or ack.get("type") != "hello_ack":
                    reason = (
                        (ack or {}).get("reason", "connection closed")
                        if ack is None or ack.get("type") == "error"
                        else f"unexpected {ack.get('type')!r}"
                    )
                    raise NetError(
                        f"worker {label!r} rejected the epoch: {reason}"
                    )
                link.credits = dict(ack.get("credits") or {})
                link.task = asyncio.ensure_future(link.read_loop())
            self._links = links
            await self._replay(ring)
        except Exception:
            for link in links.values():
                await link.close()
            self._links = {}
            raise

    async def _replay(self, ring: HashRing) -> None:
        retained = [
            frame
            for frames in self._history.values()
            for frame in frames
        ]
        retained.sort(key=lambda f: (f.arrival, f.source, f.seq))
        for frame in retained:
            link = self._links[ring.owner(frame.key)]
            await link.acquire(frame.source)
            assert link.writer is not None
            await write_raw_frame(link.writer, frame.payload)
        for name in sorted(self._final):
            await self._forward_bye(name)

    # -- feeder connections --------------------------------------------------

    async def _handle_feeder(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: list[str] = []
        try:
            owned = await self._feeder_handshake(reader, writer)
            if not owned:
                return
            await self._serve_feeder(reader, writer, owned)
        except ProtocolError as error:
            await self._bail(writer, str(error))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for name in owned:
                if self._owners.get(name) is writer:
                    del self._owners[name]
            writer.close()

    async def _feeder_handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> list[str]:
        frame = await read_frame(reader)
        if frame is None:
            return []
        if frame.get("type") != "hello":
            await self._bail(
                writer, f"expected hello, got {frame.get('type')!r}"
            )
            return []
        version = frame.get("version")
        if version not in protocol.SUPPORTED_VERSIONS:
            self._count("router.version_mismatch")
            await self._bail(
                writer,
                f"protocol version {version!r} unsupported; this router "
                f"speaks {sorted(protocol.SUPPORTED_VERSIONS)}",
            )
            return []
        names = frame.get("sources") or []
        unknown = [n for n in names if n not in self._expected]
        if unknown or not names:
            self._count("router.bad_hello")
            await self._bail(
                writer,
                f"unknown sources {unknown!r}; expected a non-empty subset "
                f"of {list(self._expected)!r}",
            )
            return []
        taken = [n for n in names if n in self._owners]
        if taken:
            await self._bail(
                writer, f"sources already connected: {taken!r}"
            )
            return []
        for name in names:
            self._owners[name] = writer
        self._ever_connected = True
        # The router always runs credit (block-style) flow control
        # toward feeders: a credit is returned only after the frame is
        # forwarded downstream, so worker backpressure reaches feeders.
        credits = {name: self.queue_bound for name in names}
        await write_frame(writer, protocol.hello_ack(credits, version))
        return list(names)

    async def _serve_feeder(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        owned: list[str],
    ) -> None:
        names = set(owned)
        while True:
            read = await read_frame_raw(reader)
            if read is None:
                return  # EOF; sources stay open for a reconnect
            frame, payload = read
            kind = frame.get("type")
            if kind == "data":
                source = frame.get("source")
                if source not in names:
                    raise ProtocolError(
                        f"data frame for source {source!r} not declared "
                        f"in this connection's hello"
                    )
                if source in self._final:
                    raise ProtocolError(
                        f"data frame for source {source!r} after its bye"
                    )
                record = frame.get("record") or {}
                arrival = float(
                    frame.get("arrival", record.get("ts", 0.0))
                )
                key = str(self._key_fn(source, record))
                await self._gate.wait()
                self._inflight += 1
                self._idle.clear()
                try:
                    retained = _RetainedFrame(
                        arrival,
                        int(frame.get("seq", 0)),
                        source,
                        key,
                        payload,
                    )
                    self._history[source].append(retained)
                    previous = self._max_arrival.get(
                        source, float("-inf")
                    )
                    self._max_arrival[source] = max(previous, arrival)
                    assert self._ring is not None
                    link = self._links[self._ring.owner(key)]
                    await link.acquire(source)
                    assert link.writer is not None
                    await write_raw_frame(link.writer, payload)
                finally:
                    self._release_inflight()
                self.data_frames += 1
                self._offered[source] = self._offered.get(source, 0) + 1
                if self._frame_waiters:
                    for event in self._frame_waiters:
                        event.set()
                await write_frame(
                    writer, protocol.credit_frame(source, 1)
                )
            elif kind == "heartbeat":
                if self._gate.is_set():
                    for link in self._links.values():
                        try:
                            assert link.writer is not None
                            await write_raw_frame(link.writer, payload)
                        except (ConnectionError, RuntimeError):
                            pass
            elif kind == "bye":
                source = frame.get("source")
                if source not in names:
                    raise ProtocolError(
                        f"bye for source {source!r} not owned by this "
                        f"connection"
                    )
                await self._gate.wait()
                self._inflight += 1
                self._idle.clear()
                try:
                    if source not in self._final:
                        self._final.add(source)
                        await self._forward_bye(source)
                finally:
                    self._release_inflight()
                await write_frame(writer, protocol.bye_ack(source))
                if len(self._final) == len(self._expected):
                    self._all_final.set()
            else:
                raise ProtocolError(f"unexpected frame type {kind!r}")

    async def _forward_bye(self, source: str) -> None:
        for label in sorted(self._links):
            link = self._links[label]
            if source in link.sources:
                try:
                    assert link.writer is not None
                    await write_frame(link.writer, protocol.bye(source))
                except (ConnectionError, RuntimeError):
                    pass

    def _release_inflight(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _bail(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_frame(writer, protocol.error_frame(reason))
        except (ConnectionError, RuntimeError):
            pass

    def _count(self, key: str) -> None:
        if self._collector.enabled:
            self._collector.count(key)

    # -- test/ops affordances ------------------------------------------------

    async def wait_for_data_frames(self, n: int) -> None:
        """Resolve once ``n`` data frames have been forwarded (tests)."""
        while self.data_frames < n:
            event = asyncio.Event()
            self._frame_waiters.append(event)
            try:
                await event.wait()
            finally:
                self._frame_waiters.remove(event)

    def stats(self) -> dict[str, Any]:
        """Routing accounting, ops-plane compatible (JSON-friendly)."""
        sources = {}
        for name in self._expected:
            offered = self._offered.get(name, 0)
            sources[name] = {
                "offered": offered,
                "delivered": offered,
                "dropped_overload": 0,
                "dropped_late": 0,
                "released": offered,
                "blocked": 0,
                "depth": 0,
                "max_depth": 0,
                "final": name in self._final,
                "evicted": False,
            }
        workers = {
            label: {
                "address": f"{link.host}:{link.port}",
                "sources": len(link.sources),
                "acked": len(link.acked),
            }
            for label, link in sorted(self._links.items())
        }
        return {
            "policy": "block",
            "queue_bound": self.queue_bound,
            "slack": self.slack,
            "sources": sources,
            "workers": workers,
            "epoch": self._epoch,
            "epoch_start_tick": self._epoch_start,
            "data_frames": self.data_frames,
            "shard_key": self._bundle.shard_key,
        }

    def readiness(self) -> dict[str, Any]:
        """Readiness verdict for ``/readyz``."""
        reasons: list[str] = []
        if not self._started:
            reasons.append("router not started")
        if self._epoch < 0:
            reasons.append("no worker epoch established")
        elif not self._gate.is_set() and not self._finished:
            reasons.append("rebalance in progress (forwarding frozen)")
        if not self._ever_connected:
            reasons.append("no feeder has connected yet")
        return {"ready": not reasons, "reasons": reasons}
