"""The cluster front tier: route feeder streams onto a worker ring.

:class:`ClusterRouter` accepts ordinary feeder connections — the exact
versioned wire protocol a standalone gateway speaks, so every existing
feeder works unchanged — and forwards each data frame to the worker
owning its *shard key* on a consistent-hash ring
(:class:`repro.net.ring.HashRing`). The shard key is the scenario's
batch-sharding key (:attr:`repro.net.service.ScenarioBundle.shard_key`),
so keys whose tuples must share stateful pipeline stages always land on
one worker. Forwarding relays the frame's raw JSON payload verbatim
(:func:`repro.net.protocol.write_raw_frame`) — the router's hot path
never re-encodes.

**Epochs and rebalance.** Worker membership is versioned by *epoch*.
Every membership change (join or leave) runs the same handoff:

1. **Credit freeze** — the forwarding gate closes; feeder credits are
   only re-granted after a forward, so feeders stall within one credit
   window while in-flight forwards complete.
2. **Boundary** — the epoch boundary tick ``B`` is the first tick not
   strictly covered by the cluster watermark ``W = min over non-final
   sources of (newest arrival − slack)``. Every tuple timestamped
   inside a tick below ``B`` has provably reached its old owner (a
   frame still in flight has arrival ≥ newest seen, hence timestamp
   ≥ W under the same slack ≥ delay contract a single gateway needs).
3. **Drain** — each worker gets a ``drain`` frame: reorder-buffer
   flush, punctuation swept to the end, per-tick results shipped back.
   Only ticks in ``[epoch start, B)`` will be taken from this epoch.
4. **Remap + replay** — the ring is rebuilt over the new membership
   and the router replays its retained input history (every data frame
   since the run began, per source in arrival order) to the new
   epoch's fresh sessions, followed by byes for already-final sources.
   Ticks from ``B`` on will be taken from the new epoch, whose workers
   have, by construction, each key's *complete* history.

No tuple is lost (the history replay is total) and none is duplicated
(each tick index is taken from exactly one epoch) — the egress merge
(:func:`repro.net.cluster.merge_epochs`) stays byte-identical to a
single-node run.

**Failure & recovery.** With ``checkpoint_interval`` set, the router
periodically asks each worker to snapshot its operator state
(``checkpoint``/``checkpoint_ack``, stored opaquely in a
:class:`~repro.net.recovery.CheckpointStore` together with the exact
per-source replay positions of the cut). When a worker link dies —
reset/EOF noticed by its read loop, a failed forward, or a deadline
sweep (:meth:`ClusterRouter.check_workers`) — the router freezes the
gate, quiesces in-flight forwards (blocked forwards to the dead link
abort and still return their feeder credit), and recovers in order of
preference: *resume* (reconnect to the same address, or a
:class:`~repro.net.recovery.WorkerSupervisor` respawn, shipping the
checkpoint blob plus only the post-checkpoint frame tail), else
*failover* (close the epoch at a boundary clamped to what the dead
worker's checkpoint actually covered and redistribute its span across
the survivors). Checkpoint timing never changes output — snapshots are
pure, restores resume the identical computation — only how much tail
gets replayed; the differential fault suite pins this.
"""

from __future__ import annotations

import asyncio
import time
from bisect import bisect_left
from typing import Any, Callable

from repro.errors import NetError, ProtocolError
from repro.net import protocol
from repro.net.protocol import (
    read_frame,
    read_frame_raw,
    write_frame,
    write_raw_frame,
)
from repro.net.recovery import (
    CheckpointStore,
    FailureDetector,
    WorkerCheckpoint,
    WorkerSupervisor,
)
from repro.net.ring import HashRing
from repro.net.service import ScenarioBundle
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple

#: Shard keys that are a property of the *source* (device), not of the
#: individual reading — mirrors ESPProcessor's key-extractor rule. For
#: these the router can partition whole sources across workers; for
#: record-level keys every worker must accept every source.
SOURCE_LEVEL_KEYS = ("spatial_granule", "proximity_group")


class _LinkDead(Exception):
    """A forward aborted because its worker link is dead.

    Internal control flow only: the frame in question is already in the
    retained history, so recovery's replay delivers it — the forwarding
    path just skips it (and still returns the feeder's credit, which is
    what keeps a mid-flight worker loss from deadlocking the feeder).
    """


class _RetainedFrame:
    """One data frame kept for epoch replay."""

    __slots__ = (
        "arrival", "seq", "source", "key", "payload", "ingest_id", "recv",
    )

    def __init__(
        self,
        arrival: float,
        seq: int,
        source: str,
        key: str,
        payload: bytes,
        ingest_id: int = 0,
        recv: int = 0,
    ):
        self.arrival = arrival
        self.seq = seq
        self.source = source
        self.key = key
        self.payload = payload
        #: Cluster trace identity assigned at first receipt (0 when the
        #: router runs untraced). A replay re-stamps fresh forward
        #: timestamps but keeps the original id and receive instant, so
        #: a re-run tuple's ``router.queue`` span absorbs the failover
        #: delay — attributable via its ``replayed`` flag, not a
        #: mystery spike.
        self.ingest_id = ingest_id
        self.recv = recv


def _traced_payload(
    payload: bytes, ingest_id: int, recv: int, acq: int,
    replayed: bool = False,
) -> bytes:
    """Splice the cluster trace context into a data frame's payload.

    The feeder's JSON object bytes are kept verbatim and the ``trace``
    member is appended just before the closing brace — no parse or
    re-encode on the forwarding hot path (feeders never send a
    ``trace`` key, so the splice cannot collide; the traced-cluster
    overhead gate in ``benchmarks/test_bench_telemetry.py`` is why this
    is a splice and not a ``json.dumps``). ``fwd`` is stamped here,
    immediately before the write — any serialization cost lands in the
    (cross-clock-domain) ``wire.transit`` span, not ``router.forward``.
    """
    flag = b',"replayed":true' if replayed else b""
    return b'%s,"trace":{"id":%d,"recv":%d,"acq":%d,"fwd":%d%s}}' % (
        payload[:-1], ingest_id, recv, acq, time.perf_counter_ns(), flag,
    )


class _WorkerLink:
    """The router's live connection to one worker for one epoch."""

    def __init__(self, label: str, host: str, port: int):
        self.label = label
        self.host = host
        self.port = port
        self.reader: "asyncio.StreamReader | None" = None
        self.writer: "asyncio.StreamWriter | None" = None
        self.sources: tuple[str, ...] = ()
        self.credits: dict[str, int] = {}
        self.granted = asyncio.Condition()
        self.acked: set[str] = set()
        self.per_tick: dict[int, list[StreamTuple]] = {}
        #: Tick → positional hop-span records shipped back on
        #: ``result`` frames (layout on :func:`repro.net.protocol.result`),
        #: each with its router-arrival instant (``merge``) appended as
        #: a twelfth element. Mirrored into checkpoints alongside
        #: :attr:`per_tick` and committed to the collector only at
        #: epoch close, for the ticks the epoch actually owns —
        #: exactly-once span accounting under the same ownership rule
        #: as the egress merge.
        self.span_buckets: dict[int, list[list]] = {}
        self.end: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self.task: "asyncio.Task | None" = None
        #: Set on any sign of link death; forwards abort (\ :class:`_LinkDead`)
        #: instead of blocking on credits a dead worker will never grant.
        self.dead = False
        #: A recovery task has been scheduled for this link already.
        self.recovering = False
        #: Source → data frames forwarded on this link. Snapshotted when a
        #: ``checkpoint`` frame is sent (TCP FIFO makes that the exact cut)
        #: and seeded from the store on resume, it names the first frame
        #: of the post-checkpoint tail per source.
        self.positions: dict[str, int] = {}
        #: Data frames since the last checkpoint request (scheduling).
        self.since_checkpoint = 0
        #: Checkpoint id → positions snapshot, awaiting the worker's ack.
        self.pending_checkpoints: dict[int, dict[str, int]] = {}
        # Router-wired callbacks (liveness, checkpoint acks, death).
        self.on_frame: "Callable[[str], None] | None" = None
        self.on_checkpoint_ack: (
            "Callable[[_WorkerLink, dict], None] | None"
        ) = None
        self.on_failure: "Callable[[_WorkerLink], None] | None" = None

    async def acquire(self, source: str) -> None:
        """Take one worker credit for ``source`` (block until granted).

        Raises:
            _LinkDead: When the link is (or while blocked becomes) dead.
        """
        async with self.granted:
            await self.granted.wait_for(
                lambda: self.dead or self.credits.get(source, 0) > 0
            )
            if self.dead:
                raise _LinkDead(self.label)
            self.credits[source] -= 1

    async def read_loop(self) -> None:
        """Consume worker→router frames: credits, acks, results."""
        assert self.reader is not None
        try:
            while True:
                frame = await read_frame(self.reader)
                if frame is None:
                    break
                if self.on_frame is not None:
                    self.on_frame(self.label)
                kind = frame.get("type")
                if kind == "credit":
                    async with self.granted:
                        name = frame.get("source")
                        self.credits[name] = (
                            self.credits.get(name, 0)
                            + int(frame.get("credits", 0))
                        )
                        self.granted.notify_all()
                elif kind == "bye_ack":
                    self.acked.add(frame.get("source"))
                elif kind == "result":
                    tick = int(frame.get("tick", 0))
                    bucket = self.per_tick.setdefault(tick, [])
                    bucket.extend(
                        protocol.record_to_tuple(record)
                        for record in frame.get("records") or []
                    )
                    spans = frame.get("spans")
                    if spans:
                        merge = time.perf_counter_ns()
                        hops = self.span_buckets.setdefault(tick, [])
                        for record in spans:
                            record.append(merge)
                            hops.append(record)
                elif kind == "checkpoint_ack":
                    if self.on_checkpoint_ack is not None:
                        self.on_checkpoint_ack(self, frame)
                elif kind == "result_end":
                    if not self.end.done():
                        self.end.set_result(frame)
                    break
                elif kind == "error":
                    raise NetError(
                        f"worker {self.label!r}: {frame.get('reason')}"
                    )
                else:
                    raise ProtocolError(
                        f"unexpected frame {kind!r} from worker "
                        f"{self.label!r}"
                    )
        except Exception as error:  # surface to whoever awaits results
            if not self.end.done():
                self.end.set_exception(error)
            await self._died()
        else:
            if not self.end.done():
                self.end.set_exception(
                    NetError(
                        f"worker {self.label!r} closed before result_end"
                    )
                )
                await self._died()

    async def _died(self) -> None:
        """Mark dead, release blocked forwards, tell the router."""
        self.dead = True
        async with self.granted:
            self.granted.notify_all()
        if self.on_failure is not None:
            self.on_failure(self)

    async def close(self) -> None:
        self.dead = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
        async with self.granted:
            self.granted.notify_all()
        if self.writer is not None:
            self.writer.close()
        if not self.end.done():
            # Nobody will resolve it now; keep await-ers from hanging.
            self.end.set_exception(NetError("worker link closed"))
        self.end.exception()  # retrieved: never "never awaited" noise


class ClusterRouter:
    """Front-tier server distributing feeder streams across workers.

    Args:
        bundle: The scenario being served; provides the expected
            sources, the shard key, and the punctuation schedule the
            epoch bookkeeping is expressed in.
        slack: Reorder slack, simulation seconds — the same contract as
            a single gateway: at or above the feeders' maximum delay.
            Used for worker gateways' buffers *and* the rebalance
            boundary watermark.
        queue_bound: Credit window per source, both feeder-facing and
            per worker connection.
        telemetry: Cluster-wide rollup collector; absorbs every worker
            epoch snapshot under its worker label. Also switches on
            cluster tracing: the router stamps a trace context on every
            forwarded data frame, workers ship completed hop records
            back on ``result`` frames, and epoch close commits the
            per-worker span set (``router.queue`` … ``cluster.e2e``)
            plus one ``cluster_span`` log entry per delivered tuple.
        clock: Wall-clock source (injectable for tests).
        checkpoint_interval: Ask a worker for a state checkpoint every
            this many data frames forwarded on its link; ``None``
            (default) disables checkpointing — recovery then always
            falls back to fresh sessions with full-history replay.
        supervisor: Optional :class:`~repro.net.recovery.WorkerSupervisor`
            used to respawn a dead worker before failing its span over
            to the survivors.
        suspect_after: Silence (worker→router frames) before a worker
            is reported ``suspect`` on the ops plane.
        dead_after: Silence before :meth:`check_workers` declares a
            worker dead and triggers recovery; ``None`` disables the
            deadline (link EOF/reset detection stays active).
    """

    def __init__(
        self,
        bundle: ScenarioBundle,
        *,
        slack: float = 0.0,
        queue_bound: int = 64,
        telemetry: "TelemetryCollector | None" = None,
        clock: Callable[[], float] = time.monotonic,
        checkpoint_interval: "int | None" = None,
        supervisor: "WorkerSupervisor | None" = None,
        suspect_after: float = 2.0,
        dead_after: "float | None" = None,
    ):
        self._bundle = bundle
        self.slack = float(slack)
        self.queue_bound = int(queue_bound)
        self._collector = resolve_telemetry(telemetry)
        self._clock = clock
        self._expected = tuple(sorted(bundle.streams))
        if not self._expected:
            raise NetError("router needs at least one expected source")
        self._key_fn = bundle.processor.shard_key_fn(bundle.shard_key)
        self._source_level = bundle.shard_key in SOURCE_LEVEL_KEYS
        self._ticks = bundle.processor.punctuation_ticks(
            bundle.until, bundle.tick
        )
        self._server: "asyncio.base_events.Server | None" = None
        self._links: dict[str, _WorkerLink] = {}
        self._ring: "HashRing | None" = None
        self._epoch = -1
        self._epoch_start = 0
        self._epochs: list[dict[str, Any]] = []
        self._history: dict[str, list[_RetainedFrame]] = {
            name: [] for name in self._expected
        }
        self._max_arrival: dict[str, float] = {}
        self._final: set[str] = set()
        self._owners: dict[str, asyncio.StreamWriter] = {}
        self._gate = asyncio.Event()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._rebalance = asyncio.Lock()
        self._all_final = asyncio.Event()
        self._finished = False
        self._started = False
        self._ever_connected = False
        self.data_frames = 0
        self._offered: dict[str, int] = {}
        self._frame_waiters: list[asyncio.Event] = []
        # -- cluster tracing --------------------------------------------------
        #: With an enabled collector the router stamps a trace context
        #: on every forwarded data frame (one re-encode per frame);
        #: untraced, the hot path relays the raw payload untouched.
        self._tracing = self._collector.enabled
        self._trace_seq = 0
        # -- fault tolerance --------------------------------------------------
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise NetError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.checkpoint_interval = checkpoint_interval
        self._supervisor = supervisor
        self._store = CheckpointStore()
        self._detector = FailureDetector(
            suspect_after=suspect_after, dead_after=dead_after, clock=clock
        )
        self._checkpoint_seq = 0
        self._fatal: "Exception | None" = None
        self._recovery_tasks: set[asyncio.Task] = set()
        self._recovery_waiters: list[asyncio.Event] = []
        #: Recovery accounting (also mirrored onto ``router.recovery.*``
        #: telemetry counters and surfaced in :meth:`stats`).
        self.recovery = {
            "checkpoints_acked": 0,
            "checkpoints_rejected": 0,
            "resumes": 0,
            "restarts": 0,
            "failovers": 0,
            "replayed_frames": 0,
            "forwards_skipped_dead": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the feeder-facing listener; returns ``(host, port)``.

        Feeders may connect immediately; their data stalls on the
        forwarding gate until :meth:`connect_workers` establishes
        epoch 0.
        """
        if self._server is not None:
            raise NetError("router already started")
        self._server = await asyncio.start_server(
            self._handle_feeder, host, port
        )
        self._started = True
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def connect_workers(
        self, workers: "list[tuple[str, str, int]]"
    ) -> None:
        """Establish epoch 0 over ``(label, host, port)`` workers."""
        if self._epoch >= 0:
            raise NetError(
                "workers already connected; use add_worker/remove_worker"
            )
        async with self._rebalance:
            await self._open_epoch(
                {label: (host, port) for label, host, port in workers}, 0
            )
            self._gate.set()

    async def add_worker(self, label: str, host: str, port: int) -> None:
        """Join ``label`` to the ring via a full epoch handoff."""
        if label in self._links:
            raise NetError(f"worker {label!r} already in the ring")
        await self._rebalance_to(add={label: (host, port)})

    async def remove_worker(self, label: str) -> None:
        """Retire ``label`` from the ring via a full epoch handoff."""
        if label not in self._links:
            raise NetError(f"worker {label!r} is not in the ring")
        if len(self._links) == 1:
            raise NetError("cannot remove the last worker")
        await self._rebalance_to(remove={label})

    async def run_until_complete(self) -> None:
        """Resolve once every source is final and all results are in.

        A worker lost during the final drain does not fail the run: its
        epoch is closed at the boundary its last checkpoint covers and
        the remaining tick span is re-run through a recovered epoch
        (respawn if a supervisor is configured, else the survivors).

        Raises:
            NetError: When recovery is impossible — every worker lost
                and none respawnable (also surfaced here if a
                background recovery hit that state mid-run).
        """
        await self._all_final.wait()
        while True:
            async with self._rebalance:
                if self._fatal is not None:
                    raise self._fatal
                if self._finished:
                    return
                self._gate.clear()
                if self._inflight:
                    self._idle.clear()
                    await self._idle.wait()
                membership = {
                    label: (link.host, link.port)
                    for label, link in self._links.items()
                }
                boundary, lost = await self._close_epoch(len(self._ticks))
                if boundary >= len(self._ticks):
                    self._finished = True
                    return
                survivors = await self._recovered_membership(
                    membership, lost
                )
                await self._open_epoch(survivors, boundary)
                self._bump("failovers")

    async def close(self) -> None:
        """Stop listening and tear down worker links."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._recovery_tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for link in list(self._links.values()):
            await link.close()
        self._links = {}

    def result(self) -> list[StreamTuple]:
        """The merged, deterministic cluster output (after completion)."""
        from repro.net.cluster import merge_epochs

        if not self._finished:
            raise NetError("cluster run has not completed")
        return merge_epochs(
            self._epochs, len(self._ticks), self._bundle.shard_key
        )

    def epochs(self) -> list[dict[str, Any]]:
        """Per-epoch records: span, workers, stats (for summaries)."""
        return [
            {
                "epoch": record["epoch"],
                "start_tick": record["start"],
                "end_tick": record["end"],
                "workers": sorted(record["results"]),
            }
            for record in self._epochs
        ]

    # -- rebalance ----------------------------------------------------------

    async def _rebalance_to(
        self,
        *,
        add: "dict[str, tuple[str, int]] | None" = None,
        remove: "set[str] | None" = None,
    ) -> None:
        """Apply a membership delta through a full epoch handoff.

        The delta is resolved against ``self._links`` only *after* the
        rebalance lock is held: a concurrent recovery (a worker dying
        while this call waits its turn) may already have failed the
        ring over, and a membership snapshot taken at call time would
        resurrect the dead worker's stale address.
        """
        if self._epoch < 0:
            raise NetError("connect_workers must establish epoch 0 first")
        async with self._rebalance:
            if self._finished:
                raise NetError("cluster run already completed")
            membership = {
                link.label: (link.host, link.port)
                for link in self._links.values()
            }
            membership.update(add or {})
            for label in remove or ():
                membership.pop(label, None)
            self._gate.clear()
            if self._inflight:
                self._idle.clear()
                await self._idle.wait()
            boundary, lost = await self._close_epoch(self._boundary())
            # A worker that died during the handoff cannot join the new
            # epoch at its old address; drop it from the request.
            membership = {
                label: address
                for label, address in membership.items()
                if label not in set(lost)
            }
            if not membership:
                raise NetError("every worker was lost during the handoff")
            await self._open_epoch(membership, boundary)
            self._gate.set()

    def _boundary(self) -> int:
        """First tick index the *next* epoch's output will be taken from."""
        watermark = float("inf")
        for name in self._expected:
            if name in self._final:
                continue
            seen = self._max_arrival.get(name)
            if seen is None:
                watermark = float("-inf")
                break
            watermark = min(watermark, seen - self.slack)
        if watermark == float("inf"):
            boundary = len(self._ticks)
        else:
            # Same strictly-below sweep rule (and float tolerance) as
            # FjordSession.advance: ticks with tick + 2e-9 < watermark.
            boundary = bisect_left(
                [tick + 2e-9 for tick in self._ticks], watermark
            )
        return min(max(boundary, self._epoch_start), len(self._ticks))

    async def _close_epoch(self, boundary: int) -> "tuple[int, list[str]]":
        """Drain and settle the current epoch at ``boundary``.

        A link that is dead (or dies during the drain) contributes its
        last *acked checkpoint* instead of a live result_end: the
        store's per-tick snapshot is complete through the ticks it
        reported then, so the boundary is clamped to that count (or to
        the epoch start when the worker never checkpointed — its whole
        span re-runs). Live per_tick on a dead link is never trusted:
        death mid-result-shipping can leave a partially filled bucket.

        Returns:
            ``(boundary, lost)`` — the possibly clamped boundary and
            the labels that could not produce a live drain.
        """
        results: dict[str, dict[str, Any]] = {}
        span_sources: dict[str, dict[int, list[dict]]] = {}
        lost: list[str] = []
        for label in sorted(self._links):
            link = self._links[label]
            if link.dead:
                continue
            try:
                assert link.writer is not None
                await write_frame(link.writer, protocol.drain())
            except (ConnectionError, RuntimeError):
                pass  # already completing; result_end settles it either way
        for label in sorted(self._links):
            link = self._links[label]
            end = None
            if not link.dead:
                try:
                    end = await link.end
                except Exception:
                    link.dead = True
            if end is not None:
                results[label] = {
                    "per_tick": link.per_tick,
                    "ticks": int(end.get("ticks", 0)),
                    "stats": end.get("stats") or {},
                }
                span_sources[label] = link.span_buckets
                snapshot = end.get("telemetry")
                if snapshot and self._collector.enabled:
                    self._collector.absorb(snapshot, node=label)
                continue
            lost.append(label)
            entry = self._store.latest(label)
            if entry is not None and entry.epoch == self._epoch:
                results[label] = {
                    "per_tick": {
                        tick: list(bucket)
                        for tick, bucket in entry.per_tick.items()
                    },
                    "ticks": entry.ticks,
                    "stats": {},
                }
                span_sources[label] = entry.spans
                boundary = min(boundary, entry.ticks)
            else:
                results[label] = {"per_tick": {}, "ticks": 0, "stats": {}}
                boundary = self._epoch_start
        boundary = min(max(boundary, self._epoch_start), len(self._ticks))
        # Commit span records under the same ownership rule as the
        # egress merge: only ticks inside [epoch start, boundary)
        # belong to this epoch, so every delivered tuple's cluster span
        # set is committed exactly once — re-runs of already-owned
        # ticks (full-history replay after a failover) are dropped
        # here, and a dead link's live buckets are never trusted past
        # its checkpoint (its ``span_sources`` entry *is* the
        # checkpoint's snapshot, mirroring ``per_tick``).
        if self._tracing:
            for label in sorted(span_sources):
                self._commit_spans(
                    label, span_sources[label], self._epoch_start, boundary
                )
        self._epochs.append(
            {
                "epoch": self._epoch,
                "start": self._epoch_start,
                "end": boundary,
                "results": results,
            }
        )
        for link in list(self._links.values()):
            self._detector.unregister(link.label)
            await link.close()
        self._links = {}
        self._epoch_start = boundary
        return boundary, lost

    #: The cluster hop phases in path order: ``(span name, span-log
    #: field, minuend index, subtrahend index)`` into the positional
    #: hop record (layout on :func:`repro.net.protocol.result`; index
    #: 11 is the router-stamped ``merge`` arrival). Consecutive phases
    #: share their boundary stamps, so the integer-ns durations sum
    #: *exactly* to ``cluster.e2e`` — same-clock-domain phases are true
    #: durations; the two marked cross-domain (router clock → worker
    #: clock and back) additionally absorb any clock-origin skew.
    CLUSTER_PHASES = (
        ("router.queue", "router_queue_ns", 4, 3),
        ("router.forward", "router_forward_ns", 5, 4),
        ("wire.transit", "wire_transit_ns", 6, 5),    # cross clock domain
        ("worker.queue", "worker_queue_ns", 7, 6),
        ("worker.reorder", "worker_reorder_ns", 8, 7),
        ("worker.session", "worker_session_ns", 9, 8),
        ("merge.egress", "merge_egress_ns", 11, 9),   # cross clock domain
    )

    def _commit_spans(
        self,
        label: str,
        buckets: "dict[int, list[list]]",
        start: int,
        end: int,
    ) -> None:
        """Close the cluster span set for ``label``'s owned ticks: one
        span-log entry per tuple plus its eight per-hop histograms.

        Span names are recorded ``<label>:<name>`` — the same prefixing
        :meth:`~repro.streams.telemetry.InMemoryCollector.absorb` gives
        worker snapshots under ``node=`` — which the ops plane renders
        as a ``worker`` label on ``repro_span_latency_ns``. The loop is
        deliberately flat — names resolved once per worker, stamps by
        position — because it runs once per delivered tuple and counts
        against the traced cluster's overhead budget.
        """
        collector = self._collector
        record_span = collector.record_span
        phases = [
            (f"{label}:{name}", field, hi, lo)
            for name, field, hi, lo in self.CLUSTER_PHASES
        ]
        e2e_name = f"{label}:cluster.e2e"
        for tick in sorted(buckets):
            if not start <= tick < end:
                continue
            for hop in buckets[tick]:
                entry: dict[str, Any] = {
                    "kind": "cluster_span",
                    "ingest_id": hop[0],
                    "source": hop[1],
                    "sim_ts": hop[2],
                    "tick": tick,
                    "worker": label,
                    "replayed": bool(hop[10]),
                }
                for name, field, hi, lo in phases:
                    duration = hop[hi] - hop[lo]
                    record_span(name, duration)
                    entry[field] = duration
                e2e = hop[11] - hop[3]
                record_span(e2e_name, e2e)
                entry["e2e_ns"] = e2e
                collector.span(**entry)

    async def _open_epoch(
        self, membership: "dict[str, tuple[str, int]]", start_tick: int
    ) -> None:
        if not membership:
            raise NetError("cluster needs at least one worker")
        self._epoch += 1
        ring = HashRing(membership)
        self._ring = ring
        if self._source_level:
            assigned: dict[str, list[str]] = {
                label: [] for label in membership
            }
            for name in self._expected:
                key = str(self._key_fn(name, None))
                assigned[ring.owner(key)].append(name)
        else:
            assigned = {
                label: list(self._expected) for label in membership
            }
        links: dict[str, _WorkerLink] = {}
        try:
            for label in sorted(membership):
                host, port = membership[label]
                link = _WorkerLink(label, host, port)
                links[label] = link
                link.reader, link.writer = await asyncio.open_connection(
                    host, port
                )
                link.sources = tuple(assigned[label])
                # A survivor whose assignment is unchanged from the
                # previous epoch sees an identical input stream, so its
                # last checkpoint resumes it here too: bounded state
                # plus the post-checkpoint tail instead of full replay.
                # Only meaningful under source-level sharding (under
                # record-level sharding a membership change moves keys
                # *within* every worker's stream).
                entry = None
                if self._source_level and self.checkpoint_interval:
                    entry = self._store.latest(label)
                    if entry is not None and not (
                        entry.epoch == self._epoch - 1
                        and tuple(entry.sources) == link.sources
                    ):
                        entry = None
                await write_frame(link.writer, protocol.worker_hello(label))
                await write_frame(
                    link.writer,
                    protocol.route(
                        self._epoch,
                        start_tick,
                        link.sources,
                        resume=entry is not None,
                    ),
                )
                if entry is not None:
                    await write_frame(
                        link.writer,
                        protocol.resume(
                            self._epoch,
                            entry.ticks,
                            entry.state,
                            entry.checkpoint_id,
                        ),
                    )
                ack = await read_frame(link.reader)
                if ack is None or ack.get("type") != "hello_ack":
                    reason = (
                        (ack or {}).get("reason", "connection closed")
                        if ack is None or ack.get("type") == "error"
                        else f"unexpected {ack.get('type')!r}"
                    )
                    raise NetError(
                        f"worker {label!r} rejected the epoch: {reason}"
                    )
                link.credits = dict(ack.get("credits") or {})
                if entry is not None:
                    link.positions = dict(entry.positions)
                    link.per_tick = {
                        tick: list(bucket)
                        for tick, bucket in entry.per_tick.items()
                    }
                    link.span_buckets = {
                        tick: list(bucket)
                        for tick, bucket in entry.spans.items()
                    }
                self._wire_link(link)
                link.task = asyncio.ensure_future(link.read_loop())
            self._links = links
            await self._replay(ring)
        except Exception:
            for link in links.values():
                await link.close()
            self._links = {}
            raise

    async def _replay(self, ring: HashRing) -> None:
        # Resumed links carry per-source positions from their
        # checkpoint cut: that many owned frames are already inside the
        # snapshot and must be skipped, not redelivered.
        skip = {
            label: dict(link.positions)
            for label, link in self._links.items()
        }
        retained = [
            frame
            for frames in self._history.values()
            for frame in frames
        ]
        retained.sort(key=lambda f: (f.arrival, f.source, f.seq))
        for frame in retained:
            link = self._links[ring.owner(frame.key)]
            pending = skip[link.label]
            if pending.get(frame.source, 0) > 0:
                pending[frame.source] -= 1
                continue
            try:
                await link.acquire(frame.source)
                link.positions[frame.source] = (
                    link.positions.get(frame.source, 0) + 1
                )
                link.since_checkpoint += 1
                assert link.writer is not None
                await write_raw_frame(
                    link.writer, self._replay_payload(frame)
                )
            except _LinkDead:
                continue  # its recovery task will replay for it
            except (ConnectionError, RuntimeError):
                self._on_link_failure(link)
                continue
            self._bump("replayed_frames")
            await self._maybe_checkpoint(link)
        for name in sorted(self._final):
            await self._forward_bye(name)

    def _replay_payload(self, frame: _RetainedFrame) -> bytes:
        """The wire payload for replaying one retained frame.

        Untraced, the original bytes are relayed verbatim. Traced, the
        frame is re-stamped with fresh acquire/forward instants under
        its *original* ingest id and receive stamp, flagged
        ``replayed`` — re-run tuples then close a second span record
        whose commit the epoch-ownership rule dedupes, and failover
        latency lands attributably in their ``router.queue`` phase.
        """
        if not self._tracing:
            return frame.payload
        return _traced_payload(
            frame.payload,
            frame.ingest_id,
            frame.recv,
            time.perf_counter_ns(),
            replayed=True,
        )

    # -- fault tolerance -----------------------------------------------------

    def _wire_link(self, link: _WorkerLink) -> None:
        """Attach detector/checkpoint/failure callbacks to a new link."""
        link.on_frame = self._detector.seen
        link.on_checkpoint_ack = self._on_checkpoint_ack
        link.on_failure = self._on_link_failure
        self._detector.register(link.label)

    def _bump(self, key: str, n: int = 1) -> None:
        self.recovery[key] += n
        for event in self._recovery_waiters:
            event.set()
        if self._collector.enabled:
            self._collector.count(f"router.recovery.{key}", n)

    def _on_checkpoint_ack(self, link: _WorkerLink, frame: dict) -> None:
        checkpoint_id = int(frame.get("id", -1))
        positions = link.pending_checkpoints.pop(checkpoint_id, None)
        if positions is None:
            return  # unsolicited or superseded ack
        if not frame.get("ok", True):
            # Worker refused (state blob over budget); keep whatever
            # checkpoint we already hold — recovery replays more tail.
            self._bump("checkpoints_rejected")
            return
        self._store.record(
            link.label,
            WorkerCheckpoint(
                checkpoint_id,
                int(frame.get("epoch", self._epoch)),
                int(frame.get("ticks", 0)),
                frame.get("state"),
                positions,
                {
                    tick: list(bucket)
                    for tick, bucket in link.per_tick.items()
                },
                sources=link.sources,
                spans={
                    tick: list(bucket)
                    for tick, bucket in link.span_buckets.items()
                },
            ),
        )
        self._bump("checkpoints_acked")

    async def _maybe_checkpoint(self, link: _WorkerLink) -> None:
        """Request a checkpoint when the link's interval has elapsed."""
        if (
            self.checkpoint_interval is None
            or link.dead
            or link.since_checkpoint < self.checkpoint_interval
        ):
            return
        link.since_checkpoint = 0
        self._checkpoint_seq += 1
        checkpoint_id = self._checkpoint_seq
        # Snapshot *before* the write, in the same no-await window as
        # the forwards' increments: TCP FIFO then makes this the exact
        # per-source cut the worker's snapshot will reflect.
        link.pending_checkpoints[checkpoint_id] = dict(link.positions)
        try:
            assert link.writer is not None
            await write_frame(
                link.writer, protocol.checkpoint(checkpoint_id)
            )
        except (ConnectionError, RuntimeError):
            link.pending_checkpoints.pop(checkpoint_id, None)
            self._on_link_failure(link)

    def _on_link_failure(self, link: _WorkerLink) -> None:
        """Link-death signal (read loop, failed forward): start recovery."""
        if self._finished or self._fatal is not None:
            return
        if self._links.get(link.label) is not link:
            return  # an old epoch's link dying during teardown
        link.dead = True
        self._detector.mark_dead(link.label)
        self._schedule_recovery(link)

    def _schedule_recovery(self, link: _WorkerLink) -> None:
        if link.recovering:
            return
        link.recovering = True
        self._count("router.worker_lost")
        task = asyncio.ensure_future(self._recover(link))
        self._recovery_tasks.add(task)
        task.add_done_callback(self._recovery_tasks.discard)

    async def _recover(self, link: _WorkerLink) -> None:
        """Supervised recovery of one dead worker link.

        Preference order: resume at the same address (the worker
        process usually outlives a connection reset), resume into a
        supervisor respawn, failover onto the survivors. Runs under the
        rebalance lock with the gate frozen, so feeders stall within
        one credit window and epochs stay well-ordered.
        """
        async with link.granted:
            link.granted.notify_all()  # free forwards blocked on credits
        try:
            async with self._rebalance:
                if self._links.get(link.label) is not link:
                    return  # superseded by a rebalance/failover already
                if self._finished or self._fatal is not None:
                    return
                self._gate.clear()
                if self._inflight:
                    self._idle.clear()
                    await self._idle.wait()
                await link.close()
                entry = self._store.latest(link.label)
                if entry is not None and entry.epoch != self._epoch:
                    entry = None  # stale snapshot from a closed epoch
                replacement = await self._open_resume_link(
                    link.label, link.host, link.port, link.sources, entry
                )
                if replacement is None and self._supervisor is not None:
                    self._detector.mark_restarting(link.label)
                    self._bump("restarts")
                    address = await self._supervisor.restart(link.label)
                    if address is not None:
                        replacement = await self._open_resume_link(
                            link.label,
                            address[0],
                            address[1],
                            link.sources,
                            entry,
                        )
                if replacement is not None:
                    self._links[link.label] = replacement
                    self._bump("resumes")
                    self._gate.set()
                    return
                # Failover: close the epoch at a boundary the dead
                # worker's checkpoint actually covers and re-run the
                # rest on whatever membership survives (plus respawns).
                membership = {
                    label: (live.host, live.port)
                    for label, live in self._links.items()
                }
                boundary, lost = await self._close_epoch(self._boundary())
                survivors = await self._recovered_membership(
                    membership, lost
                )
                await self._open_epoch(survivors, boundary)
                self._bump("failovers")
                self._gate.set()
        except Exception as error:
            # Recovery itself failed (e.g. every worker lost, none
            # respawnable). Surface on run_until_complete; the gate
            # stays closed so no frames are forwarded into the wreck.
            self._fatal = error
            self._all_final.set()

    async def _open_resume_link(
        self,
        label: str,
        host: str,
        port: int,
        sources: "tuple[str, ...]",
        entry: "WorkerCheckpoint | None",
    ) -> "_WorkerLink | None":
        """Reconnect ``label`` into the current epoch, resuming from
        ``entry`` (or from scratch when ``None``); ``None`` on failure."""
        link = _WorkerLink(label, host, port)
        try:
            link.reader, link.writer = await asyncio.open_connection(
                host, port
            )
            link.sources = sources
            await write_frame(link.writer, protocol.worker_hello(label))
            await write_frame(
                link.writer,
                protocol.route(
                    self._epoch, self._epoch_start, sources, resume=True
                ),
            )
            if entry is not None:
                await write_frame(
                    link.writer,
                    protocol.resume(
                        self._epoch,
                        entry.ticks,
                        entry.state,
                        entry.checkpoint_id,
                    ),
                )
            else:
                await write_frame(
                    link.writer, protocol.resume(self._epoch, 0, None)
                )
            ack = await read_frame(link.reader)
            if ack is None or ack.get("type") != "hello_ack":
                raise NetError(f"worker {label!r} rejected the resume")
            link.credits = dict(ack.get("credits") or {})
            if entry is not None:
                link.positions = dict(entry.positions)
                link.per_tick = {
                    tick: list(bucket)
                    for tick, bucket in entry.per_tick.items()
                }
                link.span_buckets = {
                    tick: list(bucket)
                    for tick, bucket in entry.spans.items()
                }
            self._wire_link(link)
            link.task = asyncio.ensure_future(link.read_loop())
            await self._replay_tail(link)
            return link
        except (
            OSError,
            NetError,
            ProtocolError,
            asyncio.IncompleteReadError,
            _LinkDead,
        ):
            await link.close()
            return None

    async def _replay_tail(self, link: _WorkerLink) -> None:
        """Replay this link's owned history past its checkpoint cut."""
        skip = dict(link.positions)
        retained = [
            frame
            for frames in self._history.values()
            for frame in frames
        ]
        retained.sort(key=lambda f: (f.arrival, f.source, f.seq))
        assert self._ring is not None
        for frame in retained:
            if self._ring.owner(frame.key) != link.label:
                continue
            if skip.get(frame.source, 0) > 0:
                skip[frame.source] -= 1
                continue
            await link.acquire(frame.source)
            assert link.writer is not None
            await write_raw_frame(link.writer, self._replay_payload(frame))
            self._bump("replayed_frames")
        for name in sorted(self._final):
            if name in link.sources:
                await write_frame(link.writer, protocol.bye(name))

    async def _recovered_membership(
        self,
        membership: "dict[str, tuple[str, int]]",
        lost: "list[str] | set[str]",
    ) -> "dict[str, tuple[str, int]]":
        """Survivors plus supervisor respawns for the lost labels."""
        lost = set(lost)
        survivors = {
            label: address
            for label, address in membership.items()
            if label not in lost
        }
        if self._supervisor is not None:
            for label in sorted(lost):
                self._detector.mark_restarting(label)
                self._bump("restarts")
                address = await self._supervisor.restart(label)
                if address is not None:
                    survivors[label] = address
        if not survivors:
            raise NetError(
                "every worker is lost and none could be respawned"
            )
        return survivors

    def check_workers(self, now: "float | None" = None) -> list[str]:
        """Deadline sweep: declare silent workers dead, start recovery.

        Drive this from an ops/heartbeat cadence (it never runs on a
        hidden timer); returns the labels newly declared dead. Requires
        ``dead_after`` to be set — otherwise a no-op, since an idle
        stream is indistinguishable from a hung worker.
        """
        died = self._detector.check(now)
        for label in died:
            link = self._links.get(label)
            if link is not None and not link.recovering:
                link.dead = True
                self._schedule_recovery(link)
        return died

    async def wait_for_recovery(self, key: str, n: int = 1) -> None:
        """Resolve once ``self.recovery[key] >= n`` (test affordance)."""
        if key not in self.recovery:
            raise NetError(f"unknown recovery counter {key!r}")
        while self.recovery[key] < n:
            event = asyncio.Event()
            self._recovery_waiters.append(event)
            try:
                await event.wait()
            finally:
                self._recovery_waiters.remove(event)

    # -- feeder connections --------------------------------------------------

    async def _handle_feeder(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: list[str] = []
        try:
            owned = await self._feeder_handshake(reader, writer)
            if not owned:
                return
            await self._serve_feeder(reader, writer, owned)
        except ProtocolError as error:
            await self._bail(writer, str(error))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for name in owned:
                if self._owners.get(name) is writer:
                    del self._owners[name]
            writer.close()

    async def _feeder_handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> list[str]:
        frame = await read_frame(reader)
        if frame is None:
            return []
        if frame.get("type") != "hello":
            await self._bail(
                writer, f"expected hello, got {frame.get('type')!r}"
            )
            return []
        version = frame.get("version")
        if version not in protocol.SUPPORTED_VERSIONS:
            self._count("router.version_mismatch")
            await self._bail(
                writer,
                f"protocol version {version!r} unsupported; this router "
                f"speaks {sorted(protocol.SUPPORTED_VERSIONS)}",
            )
            return []
        names = frame.get("sources") or []
        unknown = [n for n in names if n not in self._expected]
        if unknown or not names:
            self._count("router.bad_hello")
            await self._bail(
                writer,
                f"unknown sources {unknown!r}; expected a non-empty subset "
                f"of {list(self._expected)!r}",
            )
            return []
        taken = [n for n in names if n in self._owners]
        if taken:
            await self._bail(
                writer, f"sources already connected: {taken!r}"
            )
            return []
        for name in names:
            self._owners[name] = writer
        self._ever_connected = True
        # The router always runs credit (block-style) flow control
        # toward feeders: a credit is returned only after the frame is
        # forwarded downstream, so worker backpressure reaches feeders.
        credits = {name: self.queue_bound for name in names}
        await write_frame(writer, protocol.hello_ack(credits, version))
        return list(names)

    async def _serve_feeder(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        owned: list[str],
    ) -> None:
        names = set(owned)
        while True:
            read = await read_frame_raw(reader)
            if read is None:
                return  # EOF; sources stay open for a reconnect
            frame, payload = read
            kind = frame.get("type")
            if kind == "data":
                source = frame.get("source")
                if source not in names:
                    raise ProtocolError(
                        f"data frame for source {source!r} not declared "
                        f"in this connection's hello"
                    )
                if source in self._final:
                    raise ProtocolError(
                        f"data frame for source {source!r} after its bye"
                    )
                record = frame.get("record") or {}
                arrival = float(
                    frame.get("arrival", record.get("ts", 0.0))
                )
                key = str(self._key_fn(source, record))
                ingest_id = recv = 0
                if self._tracing:
                    # The receive stamp precedes the gate wait so a
                    # frozen rebalance gate shows up in router.queue.
                    recv = time.perf_counter_ns()
                    self._trace_seq += 1
                    ingest_id = self._trace_seq
                await self._gate.wait()
                self._inflight += 1
                self._idle.clear()
                link = None
                try:
                    retained = _RetainedFrame(
                        arrival,
                        int(frame.get("seq", 0)),
                        source,
                        key,
                        payload,
                        ingest_id=ingest_id,
                        recv=recv,
                    )
                    self._history[source].append(retained)
                    previous = self._max_arrival.get(
                        source, float("-inf")
                    )
                    self._max_arrival[source] = max(previous, arrival)
                    assert self._ring is not None
                    link = self._links[self._ring.owner(key)]
                    try:
                        await link.acquire(source)
                        # Count the forward *before* the write and with
                        # no await between: a concurrent checkpoint's
                        # positions snapshot is then always consistent
                        # with wire order (writer.write is synchronous
                        # at the head of write_raw_frame).
                        link.positions[source] = (
                            link.positions.get(source, 0) + 1
                        )
                        link.since_checkpoint += 1
                        assert link.writer is not None
                        out = payload
                        if self._tracing:
                            out = _traced_payload(
                                payload,
                                ingest_id,
                                recv,
                                time.perf_counter_ns(),
                            )
                        await write_raw_frame(link.writer, out)
                    except _LinkDead:
                        # Already retained; recovery's replay delivers
                        # it. Skip, return the feeder's credit below.
                        self._bump("forwards_skipped_dead")
                    except (ConnectionError, RuntimeError):
                        self._on_link_failure(link)
                        self._bump("forwards_skipped_dead")
                finally:
                    self._release_inflight()
                if link is not None and not link.dead:
                    await self._maybe_checkpoint(link)
                self.data_frames += 1
                self._offered[source] = self._offered.get(source, 0) + 1
                if self._frame_waiters:
                    for event in self._frame_waiters:
                        event.set()
                await write_frame(
                    writer, protocol.credit_frame(source, 1)
                )
            elif kind == "heartbeat":
                if self._gate.is_set():
                    for link in self._links.values():
                        try:
                            assert link.writer is not None
                            await write_raw_frame(link.writer, payload)
                        except (ConnectionError, RuntimeError):
                            pass
            elif kind == "bye":
                source = frame.get("source")
                if source not in names:
                    raise ProtocolError(
                        f"bye for source {source!r} not owned by this "
                        f"connection"
                    )
                await self._gate.wait()
                self._inflight += 1
                self._idle.clear()
                try:
                    if source not in self._final:
                        self._final.add(source)
                        await self._forward_bye(source)
                finally:
                    self._release_inflight()
                await write_frame(writer, protocol.bye_ack(source))
                if len(self._final) == len(self._expected):
                    self._all_final.set()
            else:
                raise ProtocolError(f"unexpected frame type {kind!r}")

    async def _forward_bye(self, source: str) -> None:
        for label in sorted(self._links):
            link = self._links[label]
            if source in link.sources and not link.dead:
                try:
                    assert link.writer is not None
                    await write_frame(link.writer, protocol.bye(source))
                except (ConnectionError, RuntimeError):
                    pass

    def _release_inflight(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _bail(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_frame(writer, protocol.error_frame(reason))
        except (ConnectionError, RuntimeError):
            pass

    def _count(self, key: str) -> None:
        if self._collector.enabled:
            self._collector.count(key)

    # -- test/ops affordances ------------------------------------------------

    async def wait_for_data_frames(self, n: int) -> None:
        """Resolve once ``n`` data frames have been forwarded (tests)."""
        while self.data_frames < n:
            event = asyncio.Event()
            self._frame_waiters.append(event)
            try:
                await event.wait()
            finally:
                self._frame_waiters.remove(event)

    def stats(self) -> dict[str, Any]:
        """Routing accounting, ops-plane compatible (JSON-friendly)."""
        sources = {}
        for name in self._expected:
            offered = self._offered.get(name, 0)
            sources[name] = {
                "offered": offered,
                "delivered": offered,
                "dropped_overload": 0,
                "dropped_late": 0,
                "released": offered,
                "blocked": 0,
                "depth": 0,
                "max_depth": 0,
                "final": name in self._final,
                "evicted": False,
            }
        workers = {
            label: {
                "address": f"{link.host}:{link.port}",
                "sources": len(link.sources),
                "acked": len(link.acked),
                "status": self._detector.status(label),
            }
            for label, link in sorted(self._links.items())
        }
        return {
            "policy": "block",
            "queue_bound": self.queue_bound,
            "slack": self.slack,
            "sources": sources,
            "workers": workers,
            "epoch": self._epoch,
            "epoch_start_tick": self._epoch_start,
            "data_frames": self.data_frames,
            "shard_key": self._bundle.shard_key,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpointed_workers": self._store.labels(),
            "retained_frames": sum(
                len(frames) for frames in self._history.values()
            ),
            "recovery": dict(self.recovery),
        }

    def readiness(self) -> dict[str, Any]:
        """Readiness verdict for ``/readyz``."""
        reasons: list[str] = []
        if not self._started:
            reasons.append("router not started")
        if self._epoch < 0:
            reasons.append("no worker epoch established")
        elif not self._gate.is_set() and not self._finished:
            reasons.append("rebalance in progress (forwarding frozen)")
        if not self._ever_connected:
            reasons.append("no feeder has connected yet")
        return {
            "ready": not reasons,
            "reasons": reasons,
            "workers": self._detector.statuses(),
        }
