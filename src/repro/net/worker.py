"""The cluster worker: one pipeline process behind the router.

A :class:`ClusterWorker` serves epochs. Each epoch is one TCP
connection from the router (:mod:`repro.net.router`) speaking the
protocol-2 cluster dialect: ``worker_hello`` + ``route`` open the
epoch, then the ordinary data-plane frames (``data`` / ``heartbeat`` /
``bye``, credit backpressure included) flow exactly as they would into
a standalone gateway — the worker literally wraps today's
:class:`~repro.net.gateway.IngestGateway` over a fresh
:class:`~repro.core.pipeline.ESPStreamSession`. When every routed
source is final (clean byes, or the router's ``drain`` during a
rebalance), the worker streams its cleaned output back as per-tick
``result`` frames and a closing ``result_end``.

**Per-tick attribution.** The egress merge needs each worker's output
*per punctuation tick* (the unit :func:`repro.streams.shard.merge_outputs`
merges on), but a session's ``advance`` may sweep many ticks in one
call. :class:`TickLedger` wraps the session and re-issues the sweep one
tick at a time, recording the sink delta after each — same sweeps, same
output, now attributable.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable

from repro.errors import NetError
from repro.net import protocol
from repro.net.gateway import IngestGateway, _SourceState
from repro.net.overload import BoundedIngressQueue
from repro.net.protocol import read_frame, write_frame
from repro.net.service import ScenarioBundle, build_bundle
from repro.streams.reorder import ReorderBuffer
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple

#: Records per ``result`` frame; keeps every frame far below the
#: 1 MiB payload cap whatever the record width.
RESULT_CHUNK = 256


class TickLedger:
    """Session wrapper attributing emissions to punctuation ticks.

    Presents the :class:`~repro.core.pipeline.ESPStreamSession` surface
    the gateway drives (``receptor_ids`` / ``push`` / ``advance`` /
    ``safe_time`` / ``close``) but performs every multi-tick sweep as a
    sequence of single-tick sweeps, capturing the sink's delta after
    each one into :attr:`per_tick`. The sweep *condition* — tick
    strictly below the watermark, with the Fjord session's float
    tolerance — is replicated exactly, so the swept set (and therefore
    the output) is byte-identical to driving the session directly.
    """

    def __init__(self, session: Any) -> None:
        self._session = session
        self._ticks: tuple[float, ...] = tuple(session.ticks)
        #: Output attributed to each swept tick, in tick order.
        self.per_tick: list[list[StreamTuple]] = []
        #: Completed hop-span records attributed to each swept tick —
        #: strictly parallel to :attr:`per_tick`. Populated only when
        #: the router stamped a trace context on forwarded data frames;
        #: each record is the positional array documented on
        #: :func:`repro.net.protocol.result`.
        self.spans_per_tick: list[list[list]] = []
        #: Ticks whose results have already been shipped to the router
        #: (see :func:`ship_ticks`) — result shipping is incremental so
        #: a checkpoint's ack covers exactly the results the router
        #: holds, and the final drain ships only the delta.
        self.reported = 0
        self._closing: list[list] = []
        session.span_sink = self._capture_span

    @property
    def receptor_ids(self) -> tuple[str, ...]:
        return self._session.receptor_ids

    @property
    def safe_time(self) -> float:
        return self._session.safe_time

    @property
    def ticks(self) -> tuple[float, ...]:
        return self._ticks

    def push(self, receptor_id: str, item: StreamTuple, trace: Any = None):
        return self._session.push(receptor_id, item, trace=trace)

    def advance(self, watermark: float) -> list[float]:
        swept: list[float] = []
        while True:
            index = len(self.per_tick)
            # Mirror FjordSession.advance's sweep condition (including
            # its 2e-9 tolerance) one tick at a time.
            if index >= len(self._ticks):
                break
            tick = self._ticks[index]
            if not tick + 2e-9 < watermark:
                break
            before = len(self._session.emitted)
            swept.extend(self._session.advance(tick + 3e-9))
            self.per_tick.append(list(self._session.emitted[before:]))
            self.spans_per_tick.append(self._closing)
            self._closing = []
        return swept

    def _capture_span(self, trace: Any, done: int) -> None:
        """Session callback: one cluster-traced tuple finished its sweep.

        Flattens the router's trace context plus the worker-clock
        stamps into the positional hop record that ships back on this
        tick's ``result`` frame (layout documented on
        :func:`repro.net.protocol.result`). Raw integer-ns stamps
        travel, not durations — the router computes phases at arrival,
        when it can add its own merge stamp — and the positional form
        keeps the per-tuple wire and capture cost inside the traced
        cluster's overhead budget.
        """
        ctx = trace.ctx
        self._closing.append([
            ctx["id"],
            trace.source,
            trace.sim_ts,
            ctx["recv"],
            ctx["acq"],
            ctx["fwd"],
            trace.t_ingest,
            trace.t_queued,
            trace.t_released,
            done,
            1 if ctx.get("replayed") else 0,
        ])

    def close(self) -> Any:
        self.advance(float("inf"))
        return self._session.close()

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the ledger (and its session) for later :meth:`restore`.

        Tick buckets already shipped to the router are *not* captured —
        the router snapshots its received copy at ack time — so the
        blob stays bounded by operator state plus unreported output,
        not run length. Capture inside the gateway's quiesced window,
        after shipping, and serialize synchronously.
        """
        return {
            "session": self._session.checkpoint(),
            "ticks": len(self.per_tick),
            "reported": self.reported,
            "pending": [list(bucket) for bucket in
                        self.per_tick[self.reported:]],
            "pending_spans": [list(bucket) for bucket in
                              self.spans_per_tick[self.reported:]],
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Install a :meth:`checkpoint` snapshot into this fresh ledger.

        Reported ticks come back as empty placeholder buckets (their
        contents live in the router's checkpoint store); indexing and
        the session's emitted-delta bookkeeping continue exactly where
        the snapshot left off.
        """
        if self.per_tick or self.reported:
            raise NetError("restore needs a fresh TickLedger")
        self._session.restore(state["session"])
        self.reported = int(state["reported"])
        self.per_tick = [[] for _ in range(self.reported)]
        self.per_tick.extend(list(bucket) for bucket in state["pending"])
        pending_spans = state.get("pending_spans")
        if pending_spans is None:
            pending_spans = [[] for _ in state["pending"]]
        self.spans_per_tick = [[] for _ in range(self.reported)]
        self.spans_per_tick.extend(list(bucket) for bucket in pending_spans)
        if len(self.per_tick) != int(state["ticks"]):
            raise NetError(
                f"checkpoint ledger inconsistent: {len(self.per_tick)} "
                f"ticks rebuilt, {state['ticks']} captured"
            )


async def ship_ticks(
    writer: asyncio.StreamWriter, epoch: int, ledger: TickLedger
) -> int:
    """Ship the ledger's not-yet-reported tick buckets as ``result``
    frames; returns how many ticks were shipped.

    Chunked at :data:`RESULT_CHUNK` records per frame. Advances
    ``ledger.reported`` so shipping is incremental: mid-epoch
    checkpoints ship their delta, and the final drain ships only what
    no checkpoint already delivered.
    """
    start = ledger.reported
    for index in range(start, len(ledger.per_tick)):
        bucket = ledger.per_tick[index]
        spans = ledger.spans_per_tick[index]
        offset = 0
        # Records and spans chunk in lockstep; a tick whose tuples were
        # all filtered away still ships its spans (records empty), and
        # an untraced tick with no output still ships nothing at all.
        while offset < len(bucket) or offset < len(spans):
            records = [
                protocol.tuple_to_record(item)
                for item in bucket[offset:offset + RESULT_CHUNK]
            ]
            chunk = spans[offset:offset + RESULT_CHUNK]
            await write_frame(
                writer, protocol.result(epoch, index, records, chunk)
            )
            offset += RESULT_CHUNK
    ledger.reported = len(ledger.per_tick)
    return ledger.reported - start


class WorkerGateway(IngestGateway):
    """An :class:`IngestGateway` fed by the router over one connection.

    Differences from the standalone gateway: it never binds a listener —
    the :class:`ClusterWorker` accepts the connection, performs the
    ``worker_hello``/``route`` handshake, and hands the remaining byte
    stream to :meth:`attach`; it accepts the router's ``drain``
    frame, which finalizes every routed source at once (the rebalance
    equivalent of a bye for each); and it answers the router's
    ``checkpoint`` frame with a quiesced state snapshot
    (:mod:`repro.net.recovery`).

    Args:
        epoch: The epoch this gateway serves (stamped on ``result`` and
            ``checkpoint_ack`` frames).
        label: This worker's label for the epoch.
    """

    def __init__(
        self, session: Any, sources: "Iterable[str] | None" = None,
        *, epoch: int = 0, label: str = "worker", **kwargs: Any,
    ):
        super().__init__(session, sources, **kwargs)
        self.epoch = int(epoch)
        self.label = label

    async def attach(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        sources: Iterable[str],
    ) -> None:
        """Register ``sources`` on this connection and serve its frames.

        Sends the ``hello_ack`` (with initial credits) the router
        expects in place of the feeder-dialect handshake, then runs the
        ordinary serve loop until EOF. The caller runs this as a task
        alongside :meth:`run_until_drained`. Source states that a
        pre-attach :meth:`restore` installed are kept, not rebuilt.
        """
        now = self._clock()
        owned: list[_SourceState] = []
        for name in sources:
            state = self._states.get(name)
            if state is None:
                state = _SourceState(
                    name,
                    BoundedIngressQueue(
                        self.queue_bound, self.policy, label=name,
                        telemetry=self._collector,
                    ),
                    ReorderBuffer(self.slack),
                    now,
                )
                self._states[name] = state
            state.owner = writer
            state.last_seen = now
            owned.append(state)
        self._ever_connected = True
        self._started = True
        credits = None
        if self.policy == "block":
            credits = {
                state.name: self.queue_bound - len(state.queue)
                for state in owned
            }
        await write_frame(writer, protocol.hello_ack(credits))
        self._drainer = asyncio.ensure_future(self._drain_loop())
        try:
            await self._serve_frames(reader, writer, owned)
        finally:
            for state in owned:
                if state.owner is writer:
                    state.owner = None

    @property
    def completed(self) -> bool:
        """Whether every routed source is final and drained."""
        return self._complete.is_set()

    async def _handle_extra(self, frame, writer, states) -> bool:
        kind = frame.get("type")
        if kind == "drain":
            for state in self._states.values():
                if not state.final:
                    state.final_requested = True
            self._work.set()
            return True
        if kind == "checkpoint":
            await self._handle_checkpoint(int(frame.get("id", -1)), writer)
            return True
        return False

    async def _handle_checkpoint(
        self, checkpoint_id: int, writer: asyncio.StreamWriter
    ) -> None:
        from repro.net.recovery import encode_state

        ledger = self._session
        async with self.quiesced():
            # Ship newly swept ticks first: the router's received
            # per-tick buckets then cover exactly [0, reported) — the
            # same cut the snapshot's `reported` counter names — so its
            # ack-time copy plus post-resume deltas is complete and
            # duplicate-free.
            await ship_ticks(writer, self.epoch, ledger)
            state = {
                "ledger": ledger.checkpoint(),
                "gateway": self.checkpoint(),
            }
        blob, size = encode_state(state)
        if blob is None:
            self._count("worker.checkpoint_oversized")
            await write_frame(writer, protocol.checkpoint_ack(
                checkpoint_id, self.epoch, ledger.reported, None, ok=False,
                reason=f"state blob is {size} bytes, beyond the frame "
                       f"budget; previous checkpoint stays authoritative",
            ))
            return
        self._count("worker.checkpoints_taken")
        await write_frame(writer, protocol.checkpoint_ack(
            checkpoint_id, self.epoch, ledger.reported, blob
        ))


class ClusterWorker:
    """Serve a scenario's pipeline as one worker of a cluster.

    Args:
        scenario: Scenario name (see :data:`repro.net.service.SCENARIOS`)
            or a prebuilt :class:`~repro.net.service.ScenarioBundle`.
        duration: Scenario duration override (must match the router's).
        seed: Scenario seed override (must match the router's).
        slack: Reorder slack for the epoch gateways.
        queue_bound: Per-source ingress queue capacity.
        telemetry: The worker's rollup collector; each epoch runs on a
            spawned child whose snapshot is both absorbed here (for the
            worker's own ops plane) and shipped to the router inside
            ``result_end`` (for the cluster-wide rollup).
        label: Default worker label; the router's ``worker_hello``
            overrides it per epoch.
        mode: Execution mode for the epoch sessions, one of
            :data:`~repro.streams.fjord.MODES`. Defaults to ``fused``:
            punctuation sweeps then cost O(active operators), which
            keeps the worker's credit grants prompt even on deep
            pipelines — modes are bit-identical, so this is purely a
            latency knob (and the cluster differential suite pins
            fused workers against the row-mode reference).
    """

    def __init__(
        self,
        scenario: "str | ScenarioBundle",
        *,
        duration: "float | None" = None,
        seed: "int | None" = None,
        slack: float = 0.0,
        queue_bound: int = 64,
        telemetry: "TelemetryCollector | None" = None,
        label: str = "worker",
        mode: str = "fused",
    ):
        if isinstance(scenario, ScenarioBundle):
            self._bundle = scenario
        else:
            self._bundle = build_bundle(scenario, duration, seed)
        self.slack = float(slack)
        self.queue_bound = int(queue_bound)
        self.label = label
        self.mode = mode
        self._collector = resolve_telemetry(telemetry)
        self._expected = tuple(sorted(self._bundle.streams))
        self._server: "asyncio.base_events.Server | None" = None
        self._current: "WorkerGateway | None" = None
        self._epochs_served = 0
        self._epoch_done = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()

    @property
    def epochs_served(self) -> int:
        """Epochs brought to completion (results shipped)."""
        return self._epochs_served

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and accept router connections; returns ``(host, port)``."""
        if self._server is not None:
            raise NetError("worker already started")
        self._server = await asyncio.start_server(self._accept, host, port)
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def wait_epochs(self, n: int) -> None:
        """Resolve once at least ``n`` epochs have completed."""
        while self._epochs_served < n:
            self._epoch_done.clear()
            await self._epoch_done.wait()

    async def close(self) -> None:
        """Stop accepting and cancel any in-flight epoch handlers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # -- per-connection epoch lifecycle ---------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            await self._serve_epoch(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # router vanished; the next epoch gets a fresh connection
        except asyncio.CancelledError:
            # close() killed us mid-epoch (e.g. a scripted chaos kill);
            # end the handler quietly — the partial epoch is discarded.
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()

    async def _serve_epoch(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        opened = await self._open_epoch(reader, writer)
        if opened is None:
            return
        epoch, label, sources, resume = opened
        if not sources:
            await self._serve_idle_epoch(reader, writer, epoch, label)
            return
        collector = self._collector.spawn()
        session = self._bundle.processor.open_session(
            until=self._bundle.until,
            tick=self._bundle.tick,
            telemetry=collector,
            mode=self.mode,
        )
        ledger = TickLedger(session)
        gateway = WorkerGateway(
            ledger,
            sources,
            epoch=epoch,
            label=label,
            slack=self.slack,
            policy="block",
            queue_bound=self.queue_bound,
            telemetry=collector,
        )
        if resume is not None and resume.get("state") is not None:
            # Restore into the freshly built identical pipeline before
            # any data: configuration never crosses the wire, only the
            # operators' data state does.
            from repro.net.recovery import decode_state

            state = decode_state(resume["state"])
            ledger.restore(state["ledger"])
            gateway.restore(state["gateway"])
            if self._collector.enabled:
                self._collector.count("worker.resumed_from_checkpoint")
        self._current = gateway
        serve = asyncio.ensure_future(gateway.attach(reader, writer, sources))
        drained = asyncio.ensure_future(gateway.run_until_drained())
        try:
            await asyncio.wait(
                [serve, drained], return_when=asyncio.FIRST_COMPLETED
            )
            if not gateway.completed:
                # Connection died before the epoch finished: the epoch's
                # partial state is discarded — the router's retained
                # history makes the next epoch whole again.
                return
            await gateway.close()
            await self._ship_results(
                writer, epoch, label, ledger, gateway, collector
            )
            self._epochs_served += 1
            self._epoch_done.set()
        finally:
            for task in (serve, drained):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            if self._current is gateway:
                self._current = None
            await gateway.close()

    async def _open_epoch(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> "tuple[int, str, list[str], dict | None] | None":
        hello = await read_frame(reader)
        if hello is None:
            return None
        if hello.get("type") != "worker_hello":
            await self._bail(
                writer, f"expected worker_hello, got {hello.get('type')!r}"
            )
            return None
        version = hello.get("version")
        if version != protocol.PROTOCOL_VERSION:
            # The cluster dialect itself is the v2 feature, so a worker
            # cannot fall back the way the feeder path does.
            if self._collector.enabled:
                self._collector.count("worker.version_mismatch")
            await self._bail(
                writer,
                f"cluster dialect requires protocol "
                f"{protocol.PROTOCOL_VERSION}, got {version!r}",
            )
            return None
        label = str(hello.get("worker") or self.label)
        route = await read_frame(reader)
        if route is None:
            return None
        if route.get("type") != "route":
            await self._bail(
                writer, f"expected route, got {route.get('type')!r}"
            )
            return None
        sources = sorted(route.get("sources") or [])
        unknown = [name for name in sources if name not in self._expected]
        if unknown:
            await self._bail(
                writer,
                f"unroutable sources {unknown!r}; this worker serves "
                f"{list(self._expected)!r}",
            )
            return None
        epoch = int(route.get("epoch", 0))
        resume = None
        if route.get("resume"):
            resume = await read_frame(reader)
            if resume is None:
                return None
            if resume.get("type") != "resume":
                await self._bail(
                    writer, f"expected resume, got {resume.get('type')!r}"
                )
                return None
            if int(resume.get("epoch", -1)) != epoch:
                await self._bail(
                    writer,
                    f"resume epoch {resume.get('epoch')!r} does not match "
                    f"route epoch {epoch}",
                )
                return None
        return epoch, label, sources, resume

    async def _serve_idle_epoch(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        epoch: int,
        label: str,
    ) -> None:
        # No sources this epoch (more workers than shard keys): ack,
        # then wait for the drain that closes the epoch.
        await write_frame(writer, protocol.hello_ack({}))
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            if frame.get("type") == "drain":
                await write_frame(
                    writer,
                    protocol.result_end(epoch, label, 0, self._empty_stats()),
                )
                self._epochs_served += 1
                self._epoch_done.set()
                return
            if frame.get("type") not in ("heartbeat",):
                await self._bail(
                    writer,
                    f"unexpected frame {frame.get('type')!r} on an idle "
                    f"epoch",
                )
                return

    async def _ship_results(
        self,
        writer: asyncio.StreamWriter,
        epoch: int,
        label: str,
        ledger: TickLedger,
        gateway: WorkerGateway,
        collector: TelemetryCollector,
    ) -> None:
        # Only ticks no mid-epoch checkpoint already delivered: the
        # router holds [0, reported) from checkpoint-time shipping.
        await ship_ticks(writer, epoch, ledger)
        snapshot = None
        if collector.enabled:
            snapshot = collector.snapshot()
            # The worker's own rollup accumulates its epochs (what this
            # worker's /metrics shows); the router labels the same
            # snapshot with the worker name for the cluster-wide view.
            self._collector.absorb(snapshot)
        await write_frame(
            writer,
            protocol.result_end(
                epoch, label, len(ledger.per_tick), gateway.stats(), snapshot
            ),
        )

    async def _bail(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_frame(writer, protocol.error_frame(reason))
        except (ConnectionError, RuntimeError):
            pass

    def _empty_stats(self) -> dict[str, Any]:
        return {
            "policy": "block",
            "queue_bound": self.queue_bound,
            "slack": self.slack,
            "sources": {},
        }

    # -- ops plane -------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Current-epoch gateway accounting plus worker identity."""
        gateway = self._current
        stats = gateway.stats() if gateway is not None else self._empty_stats()
        stats["worker"] = self.label
        stats["epochs_served"] = self._epochs_served
        return stats

    def readiness(self) -> dict[str, Any]:
        """Ready once the worker is listening for router connections."""
        reasons: list[str] = []
        if self._server is None:
            reasons.append("worker not started")
        return {"ready": not reasons, "reasons": reasons}


async def serve_worker(
    name: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    slack: float = 1.5,
    queue_bound: int = 64,
    duration: "float | None" = None,
    seed: "int | None" = None,
    label: str = "worker",
    max_epochs: "int | None" = None,
    mode: str = "fused",
    telemetry: "TelemetryCollector | None" = None,
    ready: "Callable[[str, int], None] | None" = None,
    ops_port: "int | None" = None,
    ops_ready: "Callable[[str, int], None] | None" = None,
) -> dict[str, Any]:
    """Run one cluster worker; returns its summary when it stops.

    Args:
        max_epochs: Exit after completing this many epochs; ``None``
            serves until cancelled (the CLI maps Ctrl-C onto a clean
            close).
        ready: Called with the bound address once accepting.
        ops_port: When set, serve the worker's own ops plane
            (``/metrics``, ``/healthz``, ``/readyz``, ``/snapshot``).
    """
    worker = ClusterWorker(
        name,
        duration=duration,
        seed=seed,
        slack=slack,
        queue_bound=queue_bound,
        telemetry=telemetry,
        label=label,
        mode=mode,
    )
    ops_server = None
    ops_address = None
    if ops_port is not None:
        from repro.net.ops import OpsServer

        ops_server = OpsServer(worker, telemetry=telemetry)
        ops_host, ops_bound = await ops_server.start(host, ops_port)
        ops_address = f"{ops_host}:{ops_bound}"
        if ops_ready is not None:
            ops_ready(ops_host, ops_bound)
    try:
        bound_host, bound_port = await worker.start(host, port)
        if ready is not None:
            ready(bound_host, bound_port)
        if max_epochs is None:
            await asyncio.Event().wait()  # serve until cancelled
        else:
            await worker.wait_epochs(max_epochs)
    except asyncio.CancelledError:
        pass
    finally:
        await worker.close()
        if ops_server is not None:
            await ops_server.close()
    return {
        "scenario": worker._bundle.name,
        "address": f"{bound_host}:{bound_port}",
        "ops_address": ops_address,
        "label": label,
        "epochs_served": worker.epochs_served,
        "worker": worker.stats(),
    }
