"""Live ingestion over the network: gateway server and replay feeder.

The paper's ESP pipelines assume receptor streams simply *arrive* at the
Fjord executor. This package supplies the missing network boundary —
what HiFi calls the edge of the fan-in — so a pipeline can be fed by
remote receptors over TCP instead of in-memory traces:

- :mod:`repro.net.protocol` — the length-prefixed JSON wire format
  (versioned hello/ack, data frames, heartbeats, credits, clean close);
- :mod:`repro.net.overload` — the bounded per-source ingress queue with
  pluggable overload policies (``block``, ``drop-oldest``,
  ``drop-newest``), every outcome counted;
- :mod:`repro.net.gateway` — :class:`IngestGateway`, the asyncio TCP
  server that feeds arrivals through per-source
  :class:`~repro.streams.reorder.ReorderBuffer` instances into a
  streaming :class:`~repro.core.pipeline.ESPStreamSession`;
- :mod:`repro.net.feeder` — :class:`ReplayFeeder`, the client that
  replays any scenario trace over the wire with the
  :mod:`repro.receptors.network` delay/loss models applied;
- :mod:`repro.net.ops` — :class:`OpsServer`, the dependency-free HTTP
  ops plane (``/metrics`` Prometheus exposition, ``/healthz``,
  ``/readyz``, ``/snapshot``) behind ``repro serve --ops-port`` and
  the ``repro top`` live console;
- :mod:`repro.net.service` — scenario plumbing shared by the
  ``repro serve`` / ``repro feed`` CLI subcommands and the test suite.

The end-to-end guarantee: with reorder slack at least the maximum
network delay and a lossless channel, the cleaned output of a
network-fed pipeline is byte-identical to the in-memory batch run of
the same scenario (pinned by the loopback differential tests).
"""

from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.net.ops import OpsServer
from repro.net.overload import BoundedIngressQueue, OVERLOAD_POLICIES
from repro.net.protocol import PROTOCOL_VERSION

__all__ = [
    "BoundedIngressQueue",
    "IngestGateway",
    "OpsServer",
    "OVERLOAD_POLICIES",
    "PROTOCOL_VERSION",
    "ReplayFeeder",
]
