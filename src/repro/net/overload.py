"""Bounded ingress queues with pluggable overload policies.

A gateway that buffers without bound turns a rate spike into an OOM;
one that sheds silently turns it into a data-quality mystery. Bleach's
ingestion lesson applies: the queue must be bounded, the policy
explicit, and every shed tuple counted. Three policies:

- ``block`` — admit nothing beyond the bound; the caller propagates
  backpressure to the sender (the gateway's credit frames). The queue
  *never* drops.
- ``drop-oldest`` — evict the head to admit the newcomer: bounded
  staleness, keeps the freshest data (right for monitoring feeds).
- ``drop-newest`` — refuse the newcomer: keeps the oldest data,
  cheapest to apply (right when earlier readings anchor windows).

The accounting invariant — checked by a hypothesis property test —
holds at every instant for every policy::

    offered == delivered + dropped + len(queue)

(a ``block`` refusal counts as *blocked*, not offered: the item was
never admitted into the queue's custody and the caller still owns it).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import NetError
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry

#: The recognised overload policy names.
OVERLOAD_POLICIES = ("block", "drop-oldest", "drop-newest")

#: :meth:`BoundedIngressQueue.offer` outcomes.
QUEUED = "queued"
DROPPED = "dropped"
BLOCKED = "blocked"


class BoundedIngressQueue:
    """A FIFO of at most ``bound`` items with an explicit shed policy.

    Args:
        bound: Maximum queued items; must be >= 1.
        policy: One of :data:`OVERLOAD_POLICIES`.
        label: Telemetry namespace — counters land on
            ``gateway.<label>.offered`` / ``.delivered`` / ``.dropped``
            / ``.blocked`` and the depth gauge on operator
            ``gateway:<label>``. One naming scheme shared by the
            ``--stats`` rollups, ``/metrics`` and ``stats()`` — the
            queue's own attributes are the single source of truth and
            the collector mirrors every increment.
        telemetry: Collector for the counters; defaults to the
            process-wide default (usually a no-op).

    Attributes:
        offered: Items admitted into the queue (queued now or later
            delivered/dropped). Blocked offers are *not* counted here.
        delivered: Items handed to the consumer via :meth:`take`.
        dropped: Items shed by a drop policy — either the evicted head
            (``drop-oldest``) or the refused newcomer (``drop-newest``).
        blocked: Offers refused under ``block`` (the caller retries).
        max_depth: High-watermark of the queue depth.
    """

    def __init__(
        self,
        bound: int,
        policy: str = "block",
        label: str = "ingress",
        telemetry: "TelemetryCollector | None" = None,
    ):
        if bound < 1:
            raise NetError(f"queue bound must be >= 1, got {bound}")
        if policy not in OVERLOAD_POLICIES:
            raise NetError(
                f"unknown overload policy {policy!r}; "
                f"expected one of {OVERLOAD_POLICIES}"
            )
        self.bound = int(bound)
        self.policy = policy
        self.label = label
        self.offered = 0
        self.delivered = 0
        self.dropped = 0
        self.blocked = 0
        self.max_depth = 0
        self._items: deque[Any] = deque()
        self._collector = resolve_telemetry(telemetry)

    def offer(self, item: Any) -> str:
        """Submit one item; returns the outcome.

        Returns:
            :data:`QUEUED` when admitted, :data:`DROPPED` when the item
            (or the evicted head, under ``drop-oldest``) was shed, or
            :data:`BLOCKED` when the ``block`` policy refused it — the
            caller keeps ownership and re-offers once :meth:`take` has
            made room.
        """
        collector = self._collector
        if len(self._items) >= self.bound:
            if self.policy == "block":
                self.blocked += 1
                if collector.enabled:
                    collector.count(f"gateway.{self.label}.blocked")
                return BLOCKED
            if self.policy == "drop-newest":
                self.offered += 1
                self.dropped += 1
                if collector.enabled:
                    collector.count(f"gateway.{self.label}.offered")
                    collector.count(f"gateway.{self.label}.dropped")
                return DROPPED
            # drop-oldest: the newcomer is admitted, the head is shed.
            self._items.popleft()
            self.offered += 1
            self.dropped += 1
            self._items.append(item)
            if collector.enabled:
                collector.count(f"gateway.{self.label}.offered")
                collector.count(f"gateway.{self.label}.dropped")
            return QUEUED
        self.offered += 1
        self._items.append(item)
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        if collector.enabled:
            collector.count(f"gateway.{self.label}.offered")
            collector.sample_queue_depth(
                f"gateway:{self.label}", len(self._items)
            )
        return QUEUED

    def take(self) -> Any:
        """Remove and return the head item.

        Raises:
            NetError: When the queue is empty.
        """
        if not self._items:
            raise NetError(f"take from empty ingress queue {self.label!r}")
        item = self._items.popleft()
        self.delivered += 1
        if self._collector.enabled:
            self._collector.count(f"gateway.{self.label}.delivered")
        return item

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"BoundedIngressQueue({self.label!r}, policy={self.policy!r}, "
            f"depth={len(self._items)}/{self.bound}, "
            f"offered={self.offered}, delivered={self.delivered}, "
            f"dropped={self.dropped}, blocked={self.blocked})"
        )
