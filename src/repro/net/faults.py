"""Deterministic fault injection for the cluster's wire links.

:class:`ChaosProxy` is a TCP proxy that understands the protocol's
4-byte length prefix just enough to count *frame boundaries* — never
payloads — so faults land at scripted, reproducible points in the
stream rather than at arbitrary byte offsets. Park it between the
router and a worker (or a feeder and the router) and give it a list of
:class:`FaultEvent` triggers:

- ``reset``   — drop the triggering frame and abort both directions
  (the peer sees a connection reset, possibly mid-stream).
- ``truncate`` — forward the frame header but only a prefix of its
  payload, then close: the receiver's decoder surfaces a typed
  :class:`repro.errors.FrameTruncated`.
- ``corrupt`` — flip one payload byte (offset drawn from the seeded
  RNG) and forward; the receiver fails JSON decode.
- ``stall``   — pause the direction once for ``seconds`` before the
  triggering frame (long enough stalls trip deadline detection).
- ``slow``    — delay every frame from the trigger on by ``seconds``
  (a degraded-but-correct worker).

Triggers are addressed by ``(connection, direction, at_frame)``:
connections are numbered in accept order (the router opens one worker
connection per epoch, so connection 0 is epoch 0's link and connection
1 is the first resume/recovery link), and frames are counted per
direction within a connection. Because the protocol is a deterministic
function of the scenario seed, the same schedule hits the same frame
every run — which is what lets the differential suite assert
crash-then-recover output byte-for-byte against a single-node run.

:func:`chaos_run` is the packaged experiment (also the ``repro chaos``
CLI): an in-process cluster with checkpointing and a supervisor, one
scripted fault, and a differential verdict against the in-memory
reference.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any

from repro.errors import NetError

#: Fault kinds understood by :class:`ChaosProxy`.
FAULT_KINDS = ("reset", "truncate", "corrupt", "stall", "slow")

#: Directions, named from the connecting client's point of view.
C2S = "c2s"
S2C = "s2c"


class FaultEvent:
    """One scripted fault (see the module docstring for the kinds).

    Args:
        kind: One of :data:`FAULT_KINDS`.
        connection: Accept-order index of the proxied connection the
            fault applies to.
        direction: ``"c2s"`` (client → server) or ``"s2c"``.
        at_frame: 1-based frame index, counted per direction within
            the connection, the fault triggers on.
        keep_bytes: For ``truncate`` — payload bytes forwarded before
            the cut.
        seconds: For ``stall``/``slow`` — the injected delay.
    """

    __slots__ = ("kind", "connection", "direction", "at_frame",
                 "keep_bytes", "seconds", "fired")

    def __init__(
        self,
        kind: str,
        *,
        connection: int = 0,
        direction: str = C2S,
        at_frame: int = 1,
        keep_bytes: int = 8,
        seconds: float = 0.0,
    ):
        if kind not in FAULT_KINDS:
            raise NetError(f"unknown fault kind {kind!r}")
        if direction not in (C2S, S2C):
            raise NetError(f"direction must be 'c2s' or 's2c', got "
                           f"{direction!r}")
        if at_frame < 1:
            raise NetError(f"at_frame must be >= 1, got {at_frame}")
        self.kind = kind
        self.connection = int(connection)
        self.direction = direction
        self.at_frame = int(at_frame)
        self.keep_bytes = int(keep_bytes)
        self.seconds = float(seconds)
        self.fired = False


class ChaosProxy:
    """Frame-aware TCP proxy injecting scripted faults (see module doc).

    Args:
        backend_host: Address the proxy forwards to.
        backend_port: Port the proxy forwards to.
        schedule: :class:`FaultEvent` triggers; each fires at most once.
        seed: RNG seed for the faults' random draws (corruption offset).
    """

    def __init__(
        self,
        backend_host: str,
        backend_port: int,
        schedule: "list[FaultEvent] | tuple[FaultEvent, ...]" = (),
        *,
        seed: int = 0,
    ):
        self.backend_host = backend_host
        self.backend_port = int(backend_port)
        self.schedule = list(schedule)
        self._random = random.Random(seed)
        self._server: "asyncio.base_events.Server | None" = None
        self._tasks: set[asyncio.Task] = set()
        self.connections = 0
        #: Faults actually injected, in firing order (for reports).
        self.injected: list[dict[str, Any]] = []

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the client-facing listener; returns ``(host, port)``."""
        if self._server is not None:
            raise NetError("proxy already started")
        self._server = await asyncio.start_server(self._accept, host, port)
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = self.connections
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            backend_reader, backend_writer = await asyncio.open_connection(
                self.backend_host, self.backend_port
            )
        except OSError:
            writer.close()
            if task is not None:
                self._tasks.discard(task)
            return
        writers = (writer, backend_writer)
        try:
            await asyncio.gather(
                self._pipe(reader, backend_writer, writers, connection, C2S),
                self._pipe(backend_reader, writer, writers, connection, S2C),
                return_exceptions=True,
            )
        except asyncio.CancelledError:
            pass  # close() tearing the proxy down mid-pipe
        finally:
            for side in writers:
                side.close()
            if task is not None:
                self._tasks.discard(task)

    def _match(
        self, connection: int, direction: str, frame: int
    ) -> "FaultEvent | None":
        for event in self.schedule:
            if (
                not event.fired
                and event.connection == connection
                and event.direction == direction
                and event.at_frame == frame
            ):
                event.fired = True
                self.injected.append(
                    {
                        "kind": event.kind,
                        "connection": connection,
                        "direction": direction,
                        "frame": frame,
                    }
                )
                return event
        return None

    async def _pipe(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        writers: "tuple[asyncio.StreamWriter, asyncio.StreamWriter]",
        connection: int,
        direction: str,
    ) -> None:
        frames = 0
        delay = 0.0
        while True:
            try:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "big")
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                # EOF or reset upstream: propagate the close downstream.
                writer.close()
                return
            frames += 1
            event = self._match(connection, direction, frames)
            if event is not None:
                if event.kind == "reset":
                    for side in writers:
                        transport = side.transport
                        if transport is not None:
                            transport.abort()
                    return
                if event.kind == "truncate":
                    try:
                        writer.write(header + payload[: event.keep_bytes])
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    for side in writers:
                        side.close()
                    return
                if event.kind == "corrupt":
                    offset = self._random.randrange(max(1, len(payload)))
                    mutated = bytearray(payload)
                    mutated[offset % max(1, len(mutated))] ^= 0xFF
                    payload = bytes(mutated)
                elif event.kind == "stall":
                    await asyncio.sleep(event.seconds)
                elif event.kind == "slow":
                    delay = event.seconds
            if delay:
                await asyncio.sleep(delay)
            try:
                writer.write(header + payload)
                await writer.drain()
            except (ConnectionError, OSError):
                return


def _latency_stats(values: "list[int]") -> dict[str, Any]:
    """``count``/``p50``/``p95``/``max`` over integer-ns durations."""
    if not values:
        return {"count": 0, "p50_ns": None, "p95_ns": None, "max_ns": None}
    ordered = sorted(values)

    def pick(quantile: float) -> int:
        return ordered[min(len(ordered) - 1, int(quantile * len(ordered)))]

    return {
        "count": len(ordered),
        "p50_ns": pick(0.50),
        "p95_ns": pick(0.95),
        "max_ns": ordered[-1],
    }


def chaos_latency(
    span_log: "list[dict]", trigger: "int | None"
) -> dict[str, Any]:
    """Partition cluster ``e2e`` spans around the fault trigger.

    ``during`` is the replayed population — tuples the fault forced
    back through recovery's bounded-tail replay, so their end-to-end
    span absorbs detection, backoff and resume. ``before``/``after``
    split the first-delivery population at the trigger frame by ingest
    id (the router assigns ids in feed order, so the comparison lands
    on the exact frame the fault was scripted against). With no
    trigger (control run) everything lands in ``before``.
    """
    phases: dict[str, list[int]] = {"before": [], "during": [], "after": []}
    for record in span_log:
        if record.get("kind") != "cluster_span":
            continue
        if record.get("replayed"):
            phases["during"].append(record["e2e_ns"])
        elif trigger is None or record.get("ingest_id", 0) <= trigger:
            phases["before"].append(record["e2e_ns"])
        else:
            phases["after"].append(record["e2e_ns"])
    return {
        phase: _latency_stats(values) for phase, values in phases.items()
    }


async def chaos_run(
    name: str,
    *,
    n_workers: int = 2,
    duration: "float | None" = None,
    seed: "int | None" = None,
    fault: str = "kill",
    fraction: float = 0.4,
    checkpoint_interval: "int | None" = 24,
    slack: float = 0.0,
    max_restarts: int = 3,
    slow_seconds: float = 0.002,
) -> dict[str, Any]:
    """One scripted fault against an in-process cluster, differentially
    checked against the in-memory reference run.

    Faults (all aimed at worker ``w0``; ``fraction`` positions the
    trigger within the recording's frame count):

    - ``kill``     — stop the worker process outright; the supervisor
      respawns it and the router resumes it from its last checkpoint.
    - ``reset``    — abort the router↔worker connection; the surviving
      process is resumed at the same address.
    - ``truncate`` — cut a worker→router frame mid-payload (typed
      :class:`~repro.errors.FrameTruncated` at the router) and close.
    - ``slow``     — delay every router→worker frame; no recovery
      should trigger, output must still match.
    - ``none``     — control run, no fault.

    Returns a JSON-friendly report: the differential verdict
    (``identical``), the router's recovery counters, the injected
    fault log, and a ``latency`` block with end-to-end percentiles
    before/during/after the fault computed from the cluster spans
    (the run is always traced — see :func:`chaos_latency`).
    """
    from repro.net.feeder import ReplayFeeder
    from repro.net.recovery import WorkerSupervisor
    from repro.net.router import ClusterRouter
    from repro.net.service import build_bundle
    from repro.net.worker import ClusterWorker
    from repro.streams.telemetry import InMemoryCollector

    if fault not in ("kill", "reset", "truncate", "slow", "none"):
        raise NetError(f"unknown chaos fault {fault!r}")
    bundle = build_bundle(name, duration, seed)
    reference = bundle.processor.run(
        bundle.until, bundle.tick, sources=bundle.streams
    ).output
    total_frames = sum(len(items) for items in bundle.streams.values())
    trigger = max(1, int(fraction * total_frames))

    workers: list[ClusterWorker] = []
    proxies: list[ChaosProxy] = []

    async def spawn(label: str) -> tuple[str, int]:
        worker = ClusterWorker(
            build_bundle(name, duration, seed), slack=slack
        )
        workers.append(worker)
        return await worker.start()

    schedule: list[FaultEvent] = []
    if fault == "reset":
        # Connection 0, client(router)→server(worker): the handshake is
        # 2 frames, so the cut lands ~`trigger` data frames in.
        schedule = [FaultEvent("reset", at_frame=2 + trigger)]
    elif fault == "truncate":
        # Server→client cuts a frame toward the router. That direction
        # carries only the hello_ack, credit grants and checkpoint acks
        # until the drain, so it sees far fewer frames than the data
        # path — aim early to land mid-stream.
        schedule = [
            FaultEvent(
                "truncate", direction=S2C, at_frame=max(2, trigger // 4)
            )
        ]
    elif fault == "slow":
        schedule = [FaultEvent("slow", at_frame=2, seconds=slow_seconds)]

    supervisor = WorkerSupervisor(
        spawn,
        max_restarts=max_restarts,
        backoff_base=0.001,
        backoff_cap=0.01,
        seed=0,
    )
    collector = InMemoryCollector()
    router = ClusterRouter(
        build_bundle(name, duration, seed),
        slack=slack,
        checkpoint_interval=checkpoint_interval,
        supervisor=supervisor,
        telemetry=collector,
    )
    specs: list[tuple[str, str, int]] = []
    try:
        for index in range(n_workers):
            label = f"w{index}"
            host, port = await spawn(label)
            if index == 0 and schedule:
                proxy = ChaosProxy(host, port, schedule, seed=seed or 0)
                proxies.append(proxy)
                host, port = await proxy.start()
            specs.append((label, host, port))
        host, port = await router.start()
        await router.connect_workers(specs)
        feeder = ReplayFeeder(host, port, bundle.streams)
        feed_task = asyncio.ensure_future(feeder.run())
        try:
            if fault == "kill":
                await router.wait_for_data_frames(trigger)
                await workers[0].close()
            await feed_task
            await router.run_until_complete()
            output = router.result()
        finally:
            if not feed_task.done():
                feed_task.cancel()
                try:
                    await feed_task
                except (asyncio.CancelledError, Exception):
                    pass
    finally:
        await router.close()
        for proxy in proxies:
            await proxy.close()
        for worker in workers:
            await worker.close()
    return {
        "scenario": name,
        "fault": fault,
        "trigger_frame": trigger if fault != "none" else None,
        "identical": output == reference,
        "output_tuples": len(output),
        "reference_tuples": len(reference),
        "checkpoint_interval": checkpoint_interval,
        "recovery": dict(router.recovery),
        "latency": chaos_latency(
            collector.snapshot()["span_log"],
            trigger if fault != "none" else None,
        ),
        "injected": [
            record for proxy in proxies for record in proxy.injected
        ],
        "epochs": router.epochs(),
    }
