"""The live ops plane: ``/metrics``, health probes and the top view.

A running ``repro serve`` used to be a black box — telemetry existed in
process but nothing could ask for it. :class:`OpsServer` is the answer:
a dependency-free asyncio HTTP listener (off by default, enabled with
``--ops-port``) that renders the gateway's collector snapshot on demand:

- ``GET /metrics`` — Prometheus text exposition (format 0.0.4) built
  from the collector snapshot: operator counters and latency histograms
  (bucket ``le`` edges are exactly
  :data:`~repro.streams.telemetry.LATENCY_BUCKETS_NS`), source gauges,
  raw counters (including the ``gateway.*`` ingress accounting) and the
  ingest span histograms. Behind a cluster router the span families
  carry a ``worker`` label (rolled up through ``absorb(node=...)``
  name prefixes) and the router's recovery counters render as
  ``repro_recovery_*_total`` families.
- ``GET /healthz`` — liveness: the process is up and serving.
- ``GET /readyz`` — readiness via
  :meth:`~repro.net.gateway.IngestGateway.readiness`: 200 once the
  session is started, sources are live and no ingress queue sits at its
  bound; 503 with the reasons otherwise.
- ``GET /snapshot`` — the full JSON document (collector snapshot with
  the bulky event/span logs summarised to counts, gateway ``stats()``,
  readiness) that ``repro top`` polls.

The HTTP dialect is deliberately minimal — ``GET`` only, one request
per connection, ``Connection: close`` — because the clients are probes,
scrapers and ``repro top``, not browsers. No third-party dependency is
involved anywhere on this path.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

from repro.errors import NetError
from repro.streams.telemetry import (
    LATENCY_BUCKETS_NS,
    Histogram,
    resolve_telemetry,
)

__all__ = [
    "OpsServer",
    "format_top",
    "render_prometheus",
    "snapshot_document",
]


# -- Prometheus text exposition ------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _counter_key_to_labels(key: str) -> str:
    """Render a dotted counter key as a ``key="..."`` label pair."""
    return f'key="{_escape_label(key)}"'


#: Router recovery counters surfaced as ``repro_recovery_*_total``
#: families, with their HELP text. Every key renders on every scrape
#: (zeros included) so absence-of-recovery is observable, not ambiguous.
RECOVERY_COUNTERS = (
    ("checkpoints_acked", "Worker checkpoint acks recorded by the router."),
    ("checkpoints_rejected",
     "Checkpoints refused by workers (state blob over budget)."),
    ("resumes", "Workers resumed from their last acked checkpoint."),
    ("restarts", "Worker processes respawned by the supervisor."),
    ("failovers", "Epoch restarts rebalanced onto the surviving workers."),
    ("replayed_frames", "Data frames replayed to recovered workers."),
    ("forwards_skipped_dead",
     "Forwards skipped because the target link was already dead."),
)


def _span_labels(name: str) -> str:
    """Label pairs for one span family name.

    Cluster rollups prefix worker-origin span names as
    ``<worker>:<span>`` (see ``InMemoryCollector.absorb``); the prefix
    becomes a ``worker`` label so dashboards can aggregate a span
    across workers or drill into one.
    """
    worker, sep, span = name.partition(":")
    if sep:
        return (
            f'span="{_escape_label(span)}",worker="{_escape_label(worker)}"'
        )
    return f'span="{_escape_label(name)}"'


def _render_histogram(
    lines: list[str],
    metric: str,
    labels: str,
    counts: "list[int]",
    total_sum_ns: int,
) -> None:
    """Append cumulative ``_bucket``/``_sum``/``_count`` sample lines.

    The ``le`` edges are the raw integer nanosecond edges from
    :data:`LATENCY_BUCKETS_NS` — pinned by a golden test, because a
    drifted edge silently corrupts every recorded dashboard.
    """
    sep = "," if labels else ""
    cumulative = 0
    for edge, count in zip(LATENCY_BUCKETS_NS, counts):
        cumulative += count
        lines.append(
            f'{metric}_bucket{{{labels}{sep}le="{edge}"}} {cumulative}'
        )
    cumulative += counts[len(LATENCY_BUCKETS_NS)]
    lines.append(f'{metric}_bucket{{{labels}{sep}le="+Inf"}} {cumulative}')
    lines.append(f"{metric}_sum{{{labels}}} {total_sum_ns}")
    lines.append(f"{metric}_count{{{labels}}} {cumulative}")


def render_prometheus(
    snapshot: Mapping[str, Any],
    recovery: "Mapping[str, int] | None" = None,
) -> str:
    """Render a collector snapshot as Prometheus text exposition.

    Operator latency histograms use ``busy_ns`` as the ``_sum`` — exact,
    because every ``record_batch``/``record_punctuation`` call adds the
    identical elapsed value to both the histogram and the busy counter.
    Ends with a trailing newline as the exposition format requires.

    Args:
        snapshot: A collector snapshot.
        recovery: The router's recovery counter mapping (from
            ``ClusterRouter.stats()["recovery"]``); when given, every
            :data:`RECOVERY_COUNTERS` key renders as its own
            ``repro_recovery_<key>_total`` family.
    """
    lines: list[str] = []

    operators = snapshot.get("operators", {})
    if operators:
        for field, help_text in (
            ("tuples_in", "Tuples drained into the operator."),
            ("tuples_out", "Tuples the operator emitted."),
            ("batches", "on_batch invocations."),
            ("punctuations", "on_time invocations."),
            ("busy_ns", "Wall-clock busy time, nanoseconds."),
        ):
            metric = f"repro_operator_{field}_total"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for name in sorted(operators):
                lines.append(
                    f'{metric}{{operator="{_escape_label(name)}"}} '
                    f"{operators[name][field]}"
                )
        metric = "repro_operator_max_queue_depth"
        lines.append(f"# HELP {metric} High-watermark of the input queue.")
        lines.append(f"# TYPE {metric} gauge")
        for name in sorted(operators):
            lines.append(
                f'{metric}{{operator="{_escape_label(name)}"}} '
                f"{operators[name]['max_queue_depth']}"
            )
        metric = "repro_operator_latency_ns"
        lines.append(
            f"# HELP {metric} Per-call busy latency, nanoseconds."
        )
        lines.append(f"# TYPE {metric} histogram")
        for name in sorted(operators):
            entry = operators[name]
            _render_histogram(
                lines,
                metric,
                f'operator="{_escape_label(name)}"',
                entry["latency_ns"],
                entry["busy_ns"],
            )

    sources = snapshot.get("sources", {})
    if sources:
        metric = "repro_source_tuples_total"
        lines.append(f"# HELP {metric} Tuples ingested per source.")
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(sources):
            lines.append(
                f'{metric}{{source="{_escape_label(name)}"}} '
                f"{sources[name]['tuples']}"
            )
        metric = "repro_source_max_watermark_lag_seconds"
        lines.append(
            f"# HELP {metric} High-watermark of watermark lag, "
            f"simulation seconds."
        )
        lines.append(f"# TYPE {metric} gauge")
        for name in sorted(sources):
            lines.append(
                f'{metric}{{source="{_escape_label(name)}"}} '
                f"{sources[name]['max_watermark_lag']}"
            )

    counters = snapshot.get("counters", {})
    if counters:
        metric = "repro_counter_total"
        lines.append(
            f"# HELP {metric} Named event counters "
            f"(gateway.*, feeder.*, ticks, runs)."
        )
        lines.append(f"# TYPE {metric} counter")
        for key in sorted(counters):
            lines.append(
                f"{metric}{{{_counter_key_to_labels(key)}}} {counters[key]}"
            )

    spans = snapshot.get("spans", {})
    if spans:
        metric = "repro_span_latency_ns"
        lines.append(
            f"# HELP {metric} Ingest span durations, nanoseconds."
        )
        lines.append(f"# TYPE {metric} histogram")
        for name in sorted(spans):
            entry = spans[name]
            _render_histogram(
                lines,
                metric,
                _span_labels(name),
                entry["latency_ns"],
                entry["total_ns"],
            )

    if recovery is not None:
        for key, help_text in RECOVERY_COUNTERS:
            metric = f"repro_recovery_{key}_total"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {int(recovery.get(key, 0))}")

    return "\n".join(lines) + "\n" if lines else "\n"


# -- the /snapshot document ----------------------------------------------------


def snapshot_document(
    snapshot: Mapping[str, Any],
    gateway_stats: "Mapping[str, Any] | None" = None,
    readiness: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """The JSON document behind ``GET /snapshot``.

    The collector's event and span logs can grow without bound over a
    long serve, so the ops plane ships only their *counts*; the full
    logs stay exportable through ``--trace-out``/``--span-out``.
    """
    telemetry = {
        "operators": snapshot.get("operators", {}),
        "sources": snapshot.get("sources", {}),
        "counters": snapshot.get("counters", {}),
        "spans": snapshot.get("spans", {}),
        "events_total": len(snapshot.get("events", [])),
        "span_log_total": len(snapshot.get("span_log", [])),
    }
    return {
        "telemetry": telemetry,
        "gateway": dict(gateway_stats) if gateway_stats else None,
        "readiness": dict(readiness) if readiness else None,
    }


# -- the HTTP listener ---------------------------------------------------------

_MAX_REQUEST_LINE = 4096


class OpsServer:
    """Serve the ops endpoints for one gateway.

    Args:
        gateway: The :class:`~repro.net.gateway.IngestGateway` whose
            ``stats()``/``readiness()`` back ``/snapshot`` and
            ``/readyz``.
        telemetry: Collector whose ``snapshot()`` backs ``/metrics``;
            defaults to the process-wide default. A no-op default
            renders empty (but valid) exposition output.
    """

    def __init__(self, gateway: Any, telemetry: Any = None):
        self._gateway = gateway
        self._collector = resolve_telemetry(telemetry)
        self._server: "asyncio.base_events.Server | None" = None

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise NetError("ops server already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        return bound_host, bound_port

    async def close(self) -> None:
        """Stop accepting; idempotent."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            if not request or len(request) > _MAX_REQUEST_LINE:
                return
            parts = request.decode("ascii", "replace").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            while True:  # drain headers; the probes never send a body
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            if method != "GET":
                await self._respond(
                    writer, 405, "text/plain", "method not allowed\n"
                )
                return
            status, content_type, body = self._route(path)
            await self._respond(writer, status, content_type, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    def _route(self, path: str) -> tuple[int, str, str]:
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", "ok\n"
        if path == "/readyz":
            verdict = self._gateway.readiness()
            status = 200 if verdict["ready"] else 503
            return (
                status,
                "application/json",
                json.dumps(verdict, sort_keys=True) + "\n",
            )
        if path == "/metrics":
            recovery = self._gateway.stats().get("recovery")
            body = render_prometheus(self._snapshot(), recovery=recovery)
            return 200, "text/plain; version=0.0.4; charset=utf-8", body
        if path == "/snapshot":
            document = snapshot_document(
                self._snapshot(),
                self._gateway.stats(),
                self._gateway.readiness(),
            )
            return (
                200,
                "application/json",
                json.dumps(document, sort_keys=True) + "\n",
            )
        return 404, "text/plain; charset=utf-8", f"no route {path}\n"

    def _snapshot(self) -> dict[str, Any]:
        snapshot = getattr(self._collector, "snapshot", None)
        if snapshot is None:
            from repro.streams.telemetry import empty_snapshot

            return empty_snapshot()
        return snapshot()

    _REASONS = {
        200: "OK", 404: "Not Found", 405: "Method Not Allowed",
        503: "Service Unavailable",
    }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {self._REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()


# -- the `repro top` view ------------------------------------------------------


def _percentiles_us(counts: "list[int]") -> tuple[float, float]:
    histogram = Histogram(LATENCY_BUCKETS_NS, counts)
    return (
        histogram.percentile(0.50) / 1e3,
        histogram.percentile(0.95) / 1e3,
    )


def _fmt_us(value: float) -> str:
    return "inf" if value == float("inf") else f"{value:.0f}"


def format_top(
    document: Mapping[str, Any],
    previous: "Mapping[str, Any] | None" = None,
    interval: "float | None" = None,
) -> str:
    """Render one ``repro top`` frame from a ``/snapshot`` document.

    Args:
        document: The current ``/snapshot`` JSON.
        previous: The prior poll's document; with ``interval`` it turns
            monotone counters into rates (tuples/s). Without it the
            rate columns show ``-``.
        interval: Seconds between the two polls.
    """
    telemetry = document.get("telemetry", {})
    gateway = document.get("gateway") or {}
    readiness = document.get("readiness") or {}
    prev_ops = (previous or {}).get("telemetry", {}).get("operators", {})
    rate_known = previous is not None and interval and interval > 0

    lines: list[str] = []
    status = "ready" if readiness.get("ready") else "not ready"
    reasons = "; ".join(readiness.get("reasons", []))
    lines.append(f"status: {status}" + (f" ({reasons})" if reasons else ""))

    operators = telemetry.get("operators", {})
    if operators:
        lines.append("")
        lines.append(
            f"{'operator':<24} {'tuples/s':>9} {'in':>9} {'out':>9} "
            f"{'p50_us':>8} {'p95_us':>8} {'maxq':>5}"
        )
        for name in sorted(operators):
            entry = operators[name]
            rate = "-"
            if rate_known:
                before = prev_ops.get(name, {}).get("tuples_in", 0)
                rate = f"{(entry['tuples_in'] - before) / interval:.0f}"
            p50, p95 = _percentiles_us(entry["latency_ns"])
            lines.append(
                f"{name:<24} {rate:>9} {entry['tuples_in']:>9} "
                f"{entry['tuples_out']:>9} {_fmt_us(p50):>8} "
                f"{_fmt_us(p95):>8} {entry['max_queue_depth']:>5}"
            )

    spans = telemetry.get("spans", {})
    if spans:
        lines.append("")
        lines.append(
            f"{'span':<24} {'count':>9} {'p50_us':>8} {'p95_us':>8}"
        )
        for name in sorted(spans):
            entry = spans[name]
            p50, p95 = _percentiles_us(entry["latency_ns"])
            lines.append(
                f"{name:<24} {entry['count']:>9} {_fmt_us(p50):>8} "
                f"{_fmt_us(p95):>8}"
            )

    worker_stats = gateway.get("workers", {})
    if worker_stats:
        lines.append("")
        epoch = gateway.get("epoch")
        if epoch is not None:
            lines.append(
                f"cluster: epoch {epoch}, "
                f"{gateway.get('data_frames', 0)} frames routed on "
                f"{gateway.get('shard_key', '?')!r}"
            )
        lines.append(
            f"{'worker':<12} {'address':<22} {'sources':>8} {'acked':>6} "
            f"{'e2e_p50_us':>10} {'e2e_p95_us':>10} {'status':<10}"
        )
        for name in sorted(worker_stats):
            entry = worker_stats[name]
            # Cluster tracing records the tuple-level end-to-end span
            # under the worker-prefixed family name.
            e2e = spans.get(f"{name}:cluster.e2e")
            if e2e and e2e.get("count"):
                p50, p95 = _percentiles_us(e2e["latency_ns"])
                p50_cell, p95_cell = _fmt_us(p50), _fmt_us(p95)
            else:
                p50_cell = p95_cell = "-"
            lines.append(
                f"{name:<12} {entry['address']:<22} "
                f"{entry['sources']:>8} {entry['acked']:>6} "
                f"{p50_cell:>10} {p95_cell:>10} "
                f"{entry.get('status', 'alive'):<10}"
            )

    recovery = gateway.get("recovery") or {}
    if recovery:
        lines.append("")
        lines.append(
            "recovery: "
            + "  ".join(
                f"{key}={recovery[key]}" for key in sorted(recovery)
            )
        )

    source_stats = gateway.get("sources", {})
    if source_stats:
        lines.append("")
        lines.append(
            f"{'source':<12} {'offered':>8} {'deliv':>8} {'drop':>6} "
            f"{'late':>6} {'blocked':>8} {'depth':>6} {'lag_s':>8}"
        )
        lags = telemetry.get("sources", {})
        for name in sorted(source_stats):
            entry = source_stats[name]
            lag = lags.get(f"gateway:{name}", {}).get(
                "max_watermark_lag", 0.0
            )
            lines.append(
                f"{name:<12} {entry['offered']:>8} {entry['delivered']:>8} "
                f"{entry['dropped_overload']:>6} {entry['dropped_late']:>6} "
                f"{entry['blocked']:>8} {entry['depth']:>6} {lag:>8.3f}"
            )

    return "\n".join(lines) + "\n"
