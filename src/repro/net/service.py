"""Scenario plumbing behind ``repro serve`` and ``repro feed``.

Both CLI subcommands (and the loopback tests) need the same bundle: a
scenario's processor wired for streaming, its recorded traces for the
feeder, and the time bounds the session runs over. This module owns
that registry so the server and the client of one scenario can be
constructed independently — in separate processes — from nothing but
the scenario name and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NetError
from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.streams.telemetry import TelemetryCollector
from repro.streams.tuples import StreamTuple


@dataclass
class ScenarioBundle:
    """Everything needed to serve or feed one scenario.

    ``shard_key`` names the partitioning field the sharded batch engine
    uses for this scenario — the unit a distributing tier (the cluster
    router) must keep on one worker so stateful stages see their whole
    key group. It matches the scenario's differential shard tests.
    """

    name: str
    processor: Any
    streams: "dict[str, list[StreamTuple]]"
    until: float
    tick: "float | None"
    shard_key: str = "tag_id"


def _shelf(duration: "float | None", seed: "int | None") -> ScenarioBundle:
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(
        duration=60.0 if duration is None else duration,
        seed=3 if seed is None else seed,
    )
    processor = build_shelf_processor(scenario, "smooth+arbitrate")
    return ScenarioBundle(
        "shelf",
        processor,
        scenario.recorded_streams(),
        scenario.duration,
        scenario.poll_period,
        shard_key="tag_id",
    )


def _shelf_chain(
    duration: "float | None", seed: "int | None"
) -> ScenarioBundle:
    # The compute-heavy shelf variant for scale-out benchmarks: the same
    # recording and the same cleaned output (the ghost filter is
    # idempotent), but with a deep Point chain so per-tuple pipeline
    # cost dominates per-tuple routing cost.
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(
        duration=60.0 if duration is None else duration,
        seed=3 if seed is None else seed,
    )
    processor = build_shelf_processor(
        scenario, "smooth+arbitrate", point_chain=128
    )
    return ScenarioBundle(
        "shelf_chain",
        processor,
        scenario.recorded_streams(),
        scenario.duration,
        scenario.poll_period,
        shard_key="tag_id",
    )


def _redwood(duration: "float | None", seed: "int | None") -> ScenarioBundle:
    from repro.pipelines.sensornet import build_redwood_processor
    from repro.scenarios.redwood import RedwoodScenario

    scenario = RedwoodScenario(
        duration=0.05 * 86400.0 if duration is None else duration,
        n_groups=2,
        seed=3 if seed is None else seed,
    )
    processor = build_redwood_processor(scenario)
    return ScenarioBundle(
        "redwood",
        processor,
        scenario.recorded_streams(),
        scenario.duration,
        None,  # defaults to the smallest device sample period
        shard_key="spatial_granule",
    )


#: Scenario name → bundle builder. Small-by-default sizings so a
#: loopback serve/feed pair completes in seconds; pass ``duration`` for
#: the paper-scale runs.
SCENARIOS: "dict[str, Callable[[float | None, int | None], ScenarioBundle]]" = {
    "shelf": _shelf,
    "shelf_chain": _shelf_chain,
    "redwood": _redwood,
}


def build_bundle(
    name: str,
    duration: "float | None" = None,
    seed: "int | None" = None,
) -> ScenarioBundle:
    """Construct the named scenario's serve/feed bundle.

    Raises:
        NetError: For an unknown scenario name.
    """
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise NetError(
            f"unknown scenario {name!r}; expected one of "
            f"{sorted(SCENARIOS)}"
        ) from None
    return builder(duration, seed)


async def serve_scenario(
    name: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    slack: float = 1.5,
    policy: str = "block",
    queue_bound: int = 64,
    duration: "float | None" = None,
    seed: "int | None" = None,
    liveness_timeout: "float | None" = None,
    liveness_interval: "float | None" = None,
    telemetry: "TelemetryCollector | None" = None,
    ready: "Callable[[str, int], None] | None" = None,
    ops_port: "int | None" = None,
    ops_ready: "Callable[[str, int], None] | None" = None,
) -> dict[str, Any]:
    """Serve one scenario run end to end; returns the summary.

    Opens the streaming session, binds the gateway, waits until every
    expected source finished (clean bye or eviction), and closes.

    Args:
        ready: Called with the bound ``(host, port)`` once the gateway
            is accepting — how a caller learns an ephemeral port.
        ops_port: When set, also bind an :class:`~repro.net.ops.OpsServer`
            on this port (0 picks an ephemeral one) serving
            ``/metrics``, ``/healthz``, ``/readyz`` and ``/snapshot``
            for the gateway; closed with the gateway.
        ops_ready: Like ``ready``, for the ops listener's bound address.
    """
    bundle = build_bundle(name, duration, seed)
    session = bundle.processor.open_session(
        until=bundle.until, tick=bundle.tick, telemetry=telemetry
    )
    gateway = IngestGateway(
        session,
        slack=slack,
        policy=policy,
        queue_bound=queue_bound,
        telemetry=telemetry,
        liveness_timeout=liveness_timeout,
        liveness_interval=liveness_interval,
    )
    ops_server = None
    ops_address = None
    if ops_port is not None:
        from repro.net.ops import OpsServer

        ops_server = OpsServer(gateway, telemetry=telemetry)
        ops_host, ops_bound = await ops_server.start(host, ops_port)
        ops_address = f"{ops_host}:{ops_bound}"
        if ops_ready is not None:
            ops_ready(ops_host, ops_bound)
    try:
        bound_host, bound_port = await gateway.start(host, port)
        if ready is not None:
            ready(bound_host, bound_port)
        await gateway.run_until_drained()
        run = await gateway.close()
    finally:
        if ops_server is not None:
            await ops_server.close()
    return {
        "scenario": name,
        "address": f"{bound_host}:{bound_port}",
        "ops_address": ops_address,
        "output_tuples": len(run.output),
        "gateway": gateway.stats(),
    }


async def feed_scenario(
    name: str,
    host: str,
    port: int,
    *,
    duration: "float | None" = None,
    seed: "int | None" = None,
    mean_delay: float = 0.0,
    max_delay: "float | None" = None,
    loss_yield: "float | None" = None,
    burst: float = 8.0,
    rate: "float | None" = None,
    delay_seed: int = 0,
    telemetry: "TelemetryCollector | None" = None,
) -> dict[str, Any]:
    """Replay one scenario's recording into a running gateway.

    Args:
        mean_delay: Mean network delay, simulation seconds; ``0``
            disables the delay model entirely.
        max_delay: Delay cap; defaults to ``4 * mean_delay``. Keep it
            at or below the server's reorder slack for zero late drops.
        loss_yield: Long-run delivery fraction for the bursty loss
            channel; ``None`` delivers everything.
        burst: Mean bad-state sojourn of the loss channel, in readings.
        rate: Replay speed multiplier; ``None`` replays full-tilt.
        delay_seed: RNG seed for the delay and loss models.
    """
    bundle = build_bundle(name, duration, seed)
    delay_model = None
    if mean_delay > 0:
        from repro.receptors.network import DelayModel

        delay_model = DelayModel(
            mean_delay,
            4.0 * mean_delay if max_delay is None else max_delay,
            rng=delay_seed,
        )
    channel = None
    if loss_yield is not None:
        from repro.receptors.network import GilbertElliottChannel

        channel = GilbertElliottChannel.with_target_yield(
            loss_yield, mean_bad_epochs=burst, rng=delay_seed
        )
    feeder = ReplayFeeder(
        host,
        port,
        bundle.streams,
        delay_model=delay_model,
        channel=channel,
        rate=rate,
        telemetry=telemetry,
    )
    report = await feeder.run()
    report["scenario"] = name
    return report
