"""Fault-tolerance primitives for the cluster: checkpoints, detection,
supervision.

Three small, separately testable pieces the router composes into
supervised failover (:mod:`repro.net.router`):

- **The state blob codec** (:func:`encode_state` / :func:`decode_state`)
  — worker operator state serialized for the ``checkpoint_ack`` /
  ``resume`` frames. Pickle (the state is live operator internals:
  deques, heaps, tuples) compressed with zlib and base64-armoured so it
  rides inside the JSON wire format. Size-guarded: a blob that cannot
  fit a frame is *refused at the source* (the worker acks ``ok=false``
  and the router keeps the previous checkpoint) rather than discovered
  as a frame-cap protocol error mid-recovery.

  **Security note:** :func:`decode_state` unpickles. The router never
  calls it — blobs are stored and shipped back opaquely — and the
  worker only decodes blobs arriving on the router channel it already
  fully trusts (the router can make a worker execute arbitrary pipeline
  configs anyway). Do not point either at an untrusted peer.

- :class:`FailureDetector` — per-worker liveness bookkeeping with an
  injectable clock. Link death (EOF/reset on the worker connection) is
  the authoritative, immediate signal; the deadline scan
  (:meth:`FailureDetector.check`) exists for the *silent* failure modes
  (a hung worker whose TCP connection stays open) and is driven
  explicitly, mirroring ``IngestGateway.check_liveness`` — no hidden
  wall-clock task, so tests never sleep.

- :class:`WorkerSupervisor` — restarts dead workers through a
  caller-supplied spawn callback, with capped exponential backoff and
  seeded jitter (deterministic under test, thundering-herd-free in
  deployment).

:class:`CheckpointStore` is the router-side ledger of the latest acked
checkpoint per worker: the opaque state blob, the per-source replay
positions recorded when the ``checkpoint`` frame was sent (TCP FIFO
makes that cut exact), and a copy of the per-tick results received so
far — everything recovery needs to resume a worker by shipping bounded
state plus only the post-checkpoint frame tail, instead of replaying
full history.
"""

from __future__ import annotations

import asyncio
import base64
import pickle
import random
import time
import zlib
from typing import Any, Awaitable, Callable, Mapping

from repro.net.protocol import MAX_FRAME_BYTES
from repro.streams.tuples import StreamTuple

#: Budget for the encoded blob: the frame cap minus generous headroom
#: for the JSON envelope around it (frame type, epoch, ids, quoting).
STATE_BLOB_BUDGET = MAX_FRAME_BYTES - (64 << 10)

#: Worker liveness states surfaced on the ops plane.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
RESTARTING = "restarting"


def encode_state(state: Any) -> "tuple[str | None, int]":
    """Serialize checkpoint state to a JSON-safe blob.

    Returns ``(blob, size)``; ``blob`` is ``None`` when the encoded
    size exceeds :data:`STATE_BLOB_BUDGET` (the caller should refuse
    the checkpoint rather than ship an unframeable blob).
    """
    packed = zlib.compress(
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    )
    blob = base64.b64encode(packed).decode("ascii")
    if len(blob) > STATE_BLOB_BUDGET:
        return None, len(blob)
    return blob, len(blob)


def decode_state(blob: str) -> Any:
    """Inverse of :func:`encode_state` (unpickles — see module note)."""
    return pickle.loads(zlib.decompress(base64.b64decode(blob.encode("ascii"))))


class WorkerCheckpoint:
    """One acked checkpoint: blob + replay cut + results received so far."""

    __slots__ = ("checkpoint_id", "epoch", "ticks", "state", "positions",
                 "per_tick", "sources", "spans")

    def __init__(
        self,
        checkpoint_id: int,
        epoch: int,
        ticks: int,
        state: "str | None",
        positions: Mapping[str, int],
        per_tick: "Mapping[int, list[StreamTuple]]",
        sources: "tuple[str, ...] | list[str]" = (),
        spans: "Mapping[int, list[list]] | None" = None,
    ):
        self.checkpoint_id = checkpoint_id
        #: Epoch the snapshot belongs to; resume is only legal into a
        #: session whose input prefix matches, which the router enforces.
        self.epoch = epoch
        #: Punctuation ticks the worker's ledger had reported (results
        #: for ``[0, ticks)`` are inside :attr:`per_tick`).
        self.ticks = ticks
        self.state = state
        #: Source → count of data frames forwarded on the link before
        #: the checkpoint frame — the first post-checkpoint frame to
        #: replay, per source.
        self.positions = dict(positions)
        self.per_tick = {tick: list(bucket) for tick, bucket in
                         per_tick.items()}
        #: The source assignment the snapshot was taken under; a
        #: cross-epoch resume is only legal when the new epoch assigns
        #: the worker the same set (its input stream is then identical).
        self.sources = tuple(sources)
        #: Tick → hop-span records received alongside :attr:`per_tick`
        #: when cluster tracing is live — snapshotted and restored with
        #: the results so failover commits each tuple's span exactly
        #: once, from whichever epoch owns its tick.
        self.spans = {tick: list(bucket) for tick, bucket in
                      (spans or {}).items()}


class CheckpointStore:
    """Latest acked checkpoint per worker label."""

    def __init__(self) -> None:
        self._latest: dict[str, WorkerCheckpoint] = {}

    def record(self, label: str, entry: WorkerCheckpoint) -> None:
        self._latest[label] = entry

    def latest(self, label: str) -> "WorkerCheckpoint | None":
        return self._latest.get(label)

    def discard(self, label: str) -> None:
        self._latest.pop(label, None)

    def labels(self) -> list[str]:
        return sorted(self._latest)


class FailureDetector:
    """Track per-worker liveness; injectable clock, explicit sweeps.

    Args:
        suspect_after: Seconds of silence before a worker is reported
            ``suspect`` (informational only).
        dead_after: Seconds of silence before :meth:`check` declares a
            worker dead. ``None`` (default) disables deadline deaths —
            an idle stream is indistinguishable from a hung worker
            without traffic, so deadline detection is opt-in; link
            death stays authoritative either way.
        clock: Wall-clock source, ``time.monotonic`` by default.
    """

    def __init__(
        self,
        *,
        suspect_after: float = 2.0,
        dead_after: "float | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.suspect_after = float(suspect_after)
        self.dead_after = dead_after if dead_after is None else float(dead_after)
        self._clock = clock
        self._last_seen: dict[str, float] = {}
        #: Forced states (dead/restarting) override the deadline math.
        self._forced: dict[str, str] = {}

    def register(self, label: str, now: "float | None" = None) -> None:
        """(Re)track ``label`` as alive, starting its silence clock now."""
        self._last_seen[label] = self._clock() if now is None else now
        self._forced.pop(label, None)

    def unregister(self, label: str) -> None:
        self._last_seen.pop(label, None)
        self._forced.pop(label, None)

    def seen(self, label: str, now: "float | None" = None) -> None:
        """Record traffic from ``label`` (any frame counts, credits too)."""
        if label in self._last_seen and label not in self._forced:
            self._last_seen[label] = self._clock() if now is None else now

    def mark_dead(self, label: str) -> None:
        if label in self._last_seen:
            self._forced[label] = DEAD

    def mark_restarting(self, label: str) -> None:
        if label in self._last_seen:
            self._forced[label] = RESTARTING

    def status(self, label: str, now: "float | None" = None) -> str:
        """Current liveness verdict for ``label``."""
        forced = self._forced.get(label)
        if forced is not None:
            return forced
        last = self._last_seen.get(label)
        if last is None:
            return DEAD
        now = self._clock() if now is None else now
        silent = now - last
        if self.dead_after is not None and silent > self.dead_after:
            return DEAD
        if silent > self.suspect_after:
            return SUSPECT
        return ALIVE

    def statuses(self, now: "float | None" = None) -> dict[str, str]:
        """Label → status for every tracked worker."""
        now = self._clock() if now is None else now
        return {
            label: self.status(label, now)
            for label in sorted(self._last_seen)
        }

    def check(self, now: "float | None" = None) -> list[str]:
        """Deadline sweep: labels newly declared dead by silence.

        Only workers past ``dead_after`` that were not already forced
        dead/restarting are returned (and forced dead as a side
        effect), so a caller can treat the result as "workers needing
        recovery now".
        """
        if self.dead_after is None:
            return []
        now = self._clock() if now is None else now
        died: list[str] = []
        for label, last in sorted(self._last_seen.items()):
            if label in self._forced:
                continue
            if now - last > self.dead_after:
                self._forced[label] = DEAD
                died.append(label)
        return died


class WorkerSupervisor:
    """Respawn dead workers with capped, jittered exponential backoff.

    Args:
        spawn: ``async (label) -> (host, port)`` — start a replacement
            process for ``label`` and return its listening address.
            Exceptions from the callback count as a failed attempt.
        max_restarts: Lifetime restart budget per label; beyond it
            :meth:`restart` returns ``None`` and the router falls back
            to failover onto the survivors.
        backoff_base: First restart delay, seconds; doubles per
            successive restart of the same label.
        backoff_cap: Upper bound on the pre-jitter delay.
        jitter: Uniform multiplicative jitter fraction — the actual
            delay is ``delay * (1 + jitter * U[0, 1))``.
        seed: Seed for the jitter draws (deterministic tests and fault
            schedules).
        sleep: Injectable ``async sleep(seconds)``.
    """

    def __init__(
        self,
        spawn: "Callable[[str], Awaitable[tuple[str, int]]]",
        *,
        max_restarts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        sleep: "Callable[[float], Awaitable[None]] | None" = None,
    ):
        self._spawn = spawn
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.jitter = float(jitter)
        self._random = random.Random(seed)
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._attempts: dict[str, int] = {}
        self.last_backoff = 0.0

    def attempts(self, label: str) -> int:
        """Restarts attempted for ``label`` so far."""
        return self._attempts.get(label, 0)

    def reset(self, label: str) -> None:
        """Forget ``label``'s restart history (it completed an epoch)."""
        self._attempts.pop(label, None)

    async def restart(self, label: str) -> "tuple[str, int] | None":
        """Respawn ``label`` after backoff; ``None`` when out of budget
        or the spawn callback fails."""
        attempts = self._attempts.get(label, 0)
        if attempts >= self.max_restarts:
            return None
        self._attempts[label] = attempts + 1
        delay = min(self.backoff_cap, self.backoff_base * 2**attempts)
        delay *= 1.0 + self.jitter * self._random.random()
        self.last_backoff = delay
        await self._sleep(delay)
        try:
            host, port = await self._spawn(label)
        except Exception:
            return None
        return host, int(port)
