"""The ingestion wire protocol: length-prefixed JSON frames.

Every frame on the wire is a UTF-8 JSON object preceded by a 4-byte
big-endian byte length. JSON keeps the protocol debuggable (``nc`` plus
eyeballs suffices) and reuses the trace interchange format of
:mod:`repro.streams.traceio` for the tuple payload; the binary length
prefix makes framing unambiguous without scanning for newlines.

Frame types (all carry a ``"type"`` key):

=========== ========== =================================================
type        direction  meaning
=========== ========== =================================================
hello       client →   opens a session: protocol ``version`` plus the
                       ``sources`` (receptor ids) this connection feeds
hello_ack   → client   accepts: negotiated ``version`` and, under the
                       ``block`` overload policy, the initial per-source
                       ``credits`` (``null`` means uncredited)
data        client →   one reading: ``source``, per-source ``seq``,
                       simulated ``arrival`` time, and the ``record``
                       (:func:`tuple_to_record` encoding); a tracing
                       router adds a ``trace`` context (ingest ``id``,
                       integer-ns ``recv``/``acq``/``fwd`` hop stamps,
                       ``replayed`` flag) before forwarding — feeders
                       never send one
heartbeat   client →   liveness signal for ``sources`` between readings
credit      → client   grants ``credits`` more in-flight frames for
                       ``source`` (backpressure release)
error       → client   terminal protocol failure; ``reason`` explains
bye         client →   no more data for ``source`` (clean close)
bye_ack     → client   acknowledges the ``bye`` for ``source``
=========== ========== =================================================

Version 2 adds the cluster dialect spoken between the front-tier router
and its workers (:mod:`repro.net.router` / :mod:`repro.net.worker`). A
worker connection opens with ``worker_hello`` + ``route`` instead of
``hello``, then carries the ordinary data-plane frames above, and ends
with the worker streaming its per-tick cleaned output back:

=========== ========== =================================================
type        direction  meaning (router ↔ worker, protocol ≥ 2)
=========== ========== =================================================
worker_hello router →  opens an epoch channel: protocol ``version``
                       plus the ``worker`` label being addressed
route       router →   assigns the epoch: monotonically increasing
                       ``epoch`` number, the ``start_tick`` index whose
                       output the egress merge will take from this
                       epoch, and the ``sources`` routed to this worker
drain       router →   finalize now: treat every routed source as byed,
                       flush reorder buffers, sweep all remaining
                       punctuation ticks, then report results
result      worker →   cleaned output for one punctuation ``tick``
                       index of ``epoch``: a list of ``records``
                       (:func:`tuple_to_record`); ticks with no output
                       are simply never sent — unless tracing is live,
                       in which case a tick's completed hop-``spans``
                       ride the same frame (possibly with no records)
result_end  worker →   epoch complete: total ``ticks`` swept, the
                       worker gateway's ``stats`` and (when
                       instrumented) its ``telemetry`` snapshot
checkpoint  router →   snapshot operator state now; the TCP FIFO makes
                       the cut exact (``id`` correlates the ack)
checkpoint_ack worker → the snapshot: opaque ``state`` blob plus the
                       ``ticks`` the worker's ledger covers (``ok``
                       false = keep the previous checkpoint)
resume      router →   after a ``route`` with ``resume: true``: restore
                       this ``state`` before processing data (``null``
                       state = start fresh, expect full replay)
=========== ========== =================================================

Wire times are *simulation-axis* seconds: the feeder stamps each data
frame with the arrival time its delay model produced, and the gateway
orders on those stamps. Wall-clock time appears nowhere on the wire —
that is what makes loopback replays deterministic and fast.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Iterable, Mapping

from repro.errors import FrameTruncated, ProtocolError
from repro.streams.traceio import STREAM_COLUMN, TIMESTAMP_COLUMN
from repro.streams.tuples import StreamTuple

#: Protocol revision spoken by this build. Version 2 added the cluster
#: dialect (worker_hello/route/drain/result frames); the data-plane
#: frames are unchanged from version 1, so v1 feeders still work.
PROTOCOL_VERSION = 2

#: Protocol revisions a server accepts in a ``hello``; the ``hello_ack``
#: echoes the client's version so both sides speak the older dialect.
SUPPORTED_VERSIONS = (1, 2)

#: Default upper bound on a single frame's JSON payload, in bytes. A
#: length prefix above this is treated as a framing error rather than an
#: allocation request — garbage bytes must not OOM the gateway.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame: 4-byte big-endian length + JSON payload."""
    payload = json.dumps(frame, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks (TCP segments split frames wherever they
    like); complete frames come back in order. State between calls is
    the undecoded remainder.

    The length prefix is checked against ``max_frame_bytes`` *before*
    any payload is buffered, so a hostile prefix (say ``0xFFFFFFFF``)
    costs four bytes of inspection, not a 4 GiB allocation; callers
    must treat the resulting :class:`~repro.errors.ProtocolError` as
    fatal and close the connection (the byte stream cannot be resynced).

    Args:
        max_frame_bytes: Per-frame payload cap; defaults to the
            module-wide :data:`MAX_FRAME_BYTES`.

    Example:
        >>> decoder = FrameDecoder()
        >>> data = encode_frame({"type": "heartbeat", "sources": []})
        >>> decoder.feed(data[:3])
        []
        >>> decoder.feed(data[3:])[0]["type"]
        'heartbeat'
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes <= 0:
            raise ValueError(
                f"max_frame_bytes must be positive, got {max_frame_bytes}"
            )
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    @property
    def max_frame_bytes(self) -> int:
        """The per-frame payload cap this decoder enforces."""
        return self._max_frame_bytes

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every frame completed by it.

        Raises:
            ProtocolError: On an oversized length prefix or a payload
                that is not a JSON object.
        """
        self._buffer.extend(data)
        frames: list[dict[str, Any]] = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self._max_frame_bytes:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{self._max_frame_bytes}-byte limit"
                )
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(
                self._buffer[_HEADER.size:_HEADER.size + length]
            )
            del self._buffer[:_HEADER.size + length]
            frames.append(_parse_payload(payload))
        return frames

    def eof(self) -> None:
        """Declare end-of-stream: raise if a frame was cut mid-flight.

        Call this when the underlying transport closes. A non-empty
        buffer means the peer (or the network) died inside a frame —
        surfaced as the typed :class:`~repro.errors.FrameTruncated`
        rather than leaking transport-level errors to callers.

        Raises:
            FrameTruncated: When buffered bytes form an incomplete frame.
        """
        if not self._buffer:
            return
        if len(self._buffer) < _HEADER.size:
            raise FrameTruncated(
                f"connection closed mid-header ({len(self._buffer)} of "
                f"{_HEADER.size} bytes)"
            )
        (length,) = _HEADER.unpack_from(self._buffer)
        got = len(self._buffer) - _HEADER.size
        raise FrameTruncated(
            f"connection closed mid-frame ({got} of {length} bytes)"
        )

    def __len__(self) -> int:
        return len(self._buffer)


def _parse_payload(payload: bytes) -> dict[str, Any]:
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from None
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(
            f"frame must be a JSON object with a 'type' key, got "
            f"{frame!r:.80}"
        )
    return frame


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> "dict[str, Any] | None":
    """Read one frame from ``reader``; ``None`` on clean EOF.

    Raises:
        ProtocolError: On a truncated frame, oversized length, or
            undecodable payload.
    """
    result = await read_frame_raw(reader, max_frame_bytes)
    return None if result is None else result[0]


async def read_frame_raw(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> "tuple[dict[str, Any], bytes] | None":
    """Read one frame, returning ``(frame, payload_bytes)``.

    The raw JSON payload (without the length header) lets a forwarding
    tier relay the frame verbatim via :func:`write_raw_frame` without
    paying to re-encode it — the router's hot path.

    Raises:
        ProtocolError: On a truncated frame, oversized length, or
            undecodable payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameTruncated(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from None
    except ConnectionResetError as error:
        raise FrameTruncated(f"connection reset mid-stream: {error}") from None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame_bytes}-byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameTruncated(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from None
    except ConnectionResetError as error:
        raise FrameTruncated(
            f"connection reset mid-frame (0 of {length} bytes): {error}"
        ) from None
    return _parse_payload(payload), payload


async def write_frame(
    writer: asyncio.StreamWriter, frame: Mapping[str, Any]
) -> None:
    """Encode ``frame``, write it, and drain the transport."""
    writer.write(encode_frame(frame))
    await writer.drain()


async def write_raw_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Write an already-encoded JSON payload with a fresh length header."""
    writer.write(_HEADER.pack(len(payload)) + payload)
    await writer.drain()


# -- frame constructors -----------------------------------------------------


def hello(sources: Iterable[str], version: int = PROTOCOL_VERSION) -> dict:
    """Session-opening frame declaring the sources this connection feeds."""
    return {"type": "hello", "version": version, "sources": sorted(sources)}


def hello_ack(
    credits: "Mapping[str, int] | None", version: int = PROTOCOL_VERSION
) -> dict:
    """Handshake acceptance; ``credits`` is per-source or ``None``."""
    return {
        "type": "hello_ack",
        "version": version,
        "credits": dict(credits) if credits is not None else None,
    }


def data_frame(
    source: str, seq: int, arrival: float, item: StreamTuple
) -> dict:
    """One reading: who sent it, its rank, and when it 'arrived'."""
    return {
        "type": "data",
        "source": source,
        "seq": int(seq),
        "arrival": float(arrival),
        "record": tuple_to_record(item),
    }


def heartbeat(sources: Iterable[str]) -> dict:
    """Liveness signal covering ``sources``."""
    return {"type": "heartbeat", "sources": sorted(sources)}


def credit_frame(source: str, credits: int) -> dict:
    """Grant ``credits`` more in-flight data frames for ``source``."""
    return {"type": "credit", "source": source, "credits": int(credits)}


def error_frame(reason: str) -> dict:
    """Terminal failure notice; the sender closes after this."""
    return {"type": "error", "reason": reason}


def bye(source: str) -> dict:
    """Clean end-of-stream for ``source``."""
    return {"type": "bye", "source": source}


def bye_ack(source: str) -> dict:
    """Acknowledge the ``bye`` for ``source``."""
    return {"type": "bye_ack", "source": source}


# -- cluster dialect (protocol >= 2) ----------------------------------------


def worker_hello(worker: str, version: int = PROTOCOL_VERSION) -> dict:
    """Open a router→worker epoch channel addressed to ``worker``."""
    return {"type": "worker_hello", "version": version, "worker": worker}


def route(
    epoch: int,
    start_tick: int,
    sources: Iterable[str],
    resume: bool = False,
) -> dict:
    """Assign an epoch: the sources this worker serves and the first
    punctuation tick index whose output the egress merge takes from it.

    With ``resume=True`` the worker must expect a :func:`resume` frame
    next and restore the carried checkpoint before processing data. The
    key is omitted entirely in the common case so the golden wire bytes
    of a plain ``route`` are unchanged from protocol v2.
    """
    frame = {
        "type": "route",
        "epoch": int(epoch),
        "start_tick": int(start_tick),
        "sources": sorted(sources),
    }
    if resume:
        frame["resume"] = True
    return frame


def drain() -> dict:
    """Finalize every routed source now and report results."""
    return {"type": "drain"}


def result(
    epoch: int,
    tick: int,
    records: Iterable[Mapping[str, Any]],
    spans: "Iterable[list] | None" = None,
) -> dict:
    """Cleaned output for one punctuation tick index of ``epoch``.

    ``spans`` carries the tick's completed hop-span records when the
    cluster trace context is live (see the ``trace`` field on data
    frames): positional arrays ``[ingest_id, source, sim_ts, recv,
    acq, fwd, wrecv, queued, released, done, replayed]`` — the trace
    context's router stamps, then the worker-clock stamps, all integer
    nanoseconds, with ``replayed`` as 0/1 (positional rather than
    keyed to keep the per-tuple wire cost inside the traced cluster's
    overhead budget). The key is omitted entirely when there are none,
    so the golden wire bytes of an untraced ``result`` are unchanged
    from protocol v2.
    """
    frame = {
        "type": "result",
        "epoch": int(epoch),
        "tick": int(tick),
        "records": list(records),
    }
    if spans:
        frame["spans"] = list(spans)
    return frame


def result_end(
    epoch: int,
    worker: str,
    ticks: int,
    stats: Mapping[str, Any],
    telemetry: "Mapping[str, Any] | None" = None,
) -> dict:
    """Epoch completion: sweep count, gateway stats, telemetry snapshot."""
    return {
        "type": "result_end",
        "epoch": int(epoch),
        "worker": worker,
        "ticks": int(ticks),
        "stats": dict(stats),
        "telemetry": dict(telemetry) if telemetry is not None else None,
    }


# -- recovery dialect (protocol >= 2) ---------------------------------------


def checkpoint(checkpoint_id: int) -> dict:
    """Router→worker: snapshot your operator state *now*.

    TCP FIFO makes the cut exact: the worker has received precisely the
    data frames the router sent before this frame, so the positions the
    router recorded at send time name the first frame *not* covered by
    the snapshot. The worker quiesces (drains its ingress queues into
    the session), ships ``result`` frames for any newly swept ticks,
    then answers with :func:`checkpoint_ack`.
    """
    return {"type": "checkpoint", "id": int(checkpoint_id)}


def checkpoint_ack(
    checkpoint_id: int,
    epoch: int,
    ticks: int,
    state: "str | None",
    ok: bool = True,
    reason: str = "",
) -> dict:
    """Worker→router: the snapshot taken at :func:`checkpoint`.

    ``state`` is an opaque base64 blob (the router stores it without
    inspecting it and ships it back verbatim in :func:`resume`);
    ``ticks`` is how many punctuation ticks the worker's ledger covers.
    ``ok=False`` (e.g. state too large for one frame) tells the router
    to keep its previous checkpoint for this worker.
    """
    frame = {
        "type": "checkpoint_ack",
        "id": int(checkpoint_id),
        "epoch": int(epoch),
        "ticks": int(ticks),
        "state": state,
        "ok": bool(ok),
    }
    if reason:
        frame["reason"] = reason
    return frame


def resume(
    epoch: int, ticks: int, state: "str | None", checkpoint_id: int = -1
) -> dict:
    """Router→worker: restore this checkpoint before processing data.

    Sent immediately after a ``route`` carrying ``resume: true``. A
    ``None`` state means "no checkpoint exists" — the worker starts a
    fresh session and the router replays the full retained history for
    its keys (the provably-correct fallback).
    """
    return {
        "type": "resume",
        "epoch": int(epoch),
        "ticks": int(ticks),
        "state": state,
        "id": int(checkpoint_id),
    }


# -- tuple payload encoding -------------------------------------------------


def tuple_to_record(item: StreamTuple) -> dict[str, Any]:
    """Encode a tuple as the traceio JSONL record convention."""
    return {
        TIMESTAMP_COLUMN: item.timestamp,
        STREAM_COLUMN: item.stream,
        **item.as_dict(),
    }


def record_to_tuple(record: Mapping[str, Any]) -> StreamTuple:
    """Decode a :func:`tuple_to_record` payload.

    Raises:
        ProtocolError: When the reserved timestamp column is absent.
    """
    values = dict(record)
    if TIMESTAMP_COLUMN not in values:
        raise ProtocolError(
            f"data record lacks the {TIMESTAMP_COLUMN!r} column"
        )
    timestamp = values.pop(TIMESTAMP_COLUMN)
    stream = values.pop(STREAM_COLUMN, "")
    return StreamTuple(float(timestamp), values, str(stream))
