"""The ingestion wire protocol: length-prefixed JSON frames.

Every frame on the wire is a UTF-8 JSON object preceded by a 4-byte
big-endian byte length. JSON keeps the protocol debuggable (``nc`` plus
eyeballs suffices) and reuses the trace interchange format of
:mod:`repro.streams.traceio` for the tuple payload; the binary length
prefix makes framing unambiguous without scanning for newlines.

Frame types (all carry a ``"type"`` key):

========== ========== ==================================================
type       direction  meaning
========== ========== ==================================================
hello      client →   opens a session: protocol ``version`` plus the
                      ``sources`` (receptor ids) this connection feeds
hello_ack  → client   accepts: server ``version`` and, under the
                      ``block`` overload policy, the initial per-source
                      ``credits`` (``null`` means uncredited)
data       client →   one reading: ``source``, per-source ``seq``,
                      simulated ``arrival`` time, and the ``record``
                      (:func:`tuple_to_record` encoding)
heartbeat  client →   liveness signal for ``sources`` between readings
credit     → client   grants ``credits`` more in-flight frames for
                      ``source`` (backpressure release)
error      → client   terminal protocol failure; ``reason`` explains
bye        client →   no more data for ``source`` (clean close)
bye_ack    → client   acknowledges the ``bye`` for ``source``
========== ========== ==================================================

Wire times are *simulation-axis* seconds: the feeder stamps each data
frame with the arrival time its delay model produced, and the gateway
orders on those stamps. Wall-clock time appears nowhere on the wire —
that is what makes loopback replays deterministic and fast.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Iterable, Mapping

from repro.errors import ProtocolError
from repro.streams.traceio import STREAM_COLUMN, TIMESTAMP_COLUMN
from repro.streams.tuples import StreamTuple

#: Protocol revision spoken by this build; hellos must match exactly.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's JSON payload, in bytes. A length
#: prefix above this is treated as a framing error rather than an
#: allocation request — garbage bytes must not OOM the gateway.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame: 4-byte big-endian length + JSON payload."""
    payload = json.dumps(frame, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks (TCP segments split frames wherever they
    like); complete frames come back in order. State between calls is
    the undecoded remainder.

    Example:
        >>> decoder = FrameDecoder()
        >>> data = encode_frame({"type": "heartbeat", "sources": []})
        >>> decoder.feed(data[:3])
        []
        >>> decoder.feed(data[3:])[0]["type"]
        'heartbeat'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every frame completed by it.

        Raises:
            ProtocolError: On an oversized length prefix or a payload
                that is not a JSON object.
        """
        self._buffer.extend(data)
        frames: list[dict[str, Any]] = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit"
                )
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(
                self._buffer[_HEADER.size:_HEADER.size + length]
            )
            del self._buffer[:_HEADER.size + length]
            frames.append(_parse_payload(payload))
        return frames

    def __len__(self) -> int:
        return len(self._buffer)


def _parse_payload(payload: bytes) -> dict[str, Any]:
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from None
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(
            f"frame must be a JSON object with a 'type' key, got "
            f"{frame!r:.80}"
        )
    return frame


async def read_frame(reader: asyncio.StreamReader) -> "dict[str, Any] | None":
    """Read one frame from ``reader``; ``None`` on clean EOF.

    Raises:
        ProtocolError: On a truncated frame, oversized length, or
            undecodable payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from None
    return _parse_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, frame: Mapping[str, Any]
) -> None:
    """Encode ``frame``, write it, and drain the transport."""
    writer.write(encode_frame(frame))
    await writer.drain()


# -- frame constructors -----------------------------------------------------


def hello(sources: Iterable[str], version: int = PROTOCOL_VERSION) -> dict:
    """Session-opening frame declaring the sources this connection feeds."""
    return {"type": "hello", "version": version, "sources": sorted(sources)}


def hello_ack(
    credits: "Mapping[str, int] | None", version: int = PROTOCOL_VERSION
) -> dict:
    """Handshake acceptance; ``credits`` is per-source or ``None``."""
    return {
        "type": "hello_ack",
        "version": version,
        "credits": dict(credits) if credits is not None else None,
    }


def data_frame(
    source: str, seq: int, arrival: float, item: StreamTuple
) -> dict:
    """One reading: who sent it, its rank, and when it 'arrived'."""
    return {
        "type": "data",
        "source": source,
        "seq": int(seq),
        "arrival": float(arrival),
        "record": tuple_to_record(item),
    }


def heartbeat(sources: Iterable[str]) -> dict:
    """Liveness signal covering ``sources``."""
    return {"type": "heartbeat", "sources": sorted(sources)}


def credit_frame(source: str, credits: int) -> dict:
    """Grant ``credits`` more in-flight data frames for ``source``."""
    return {"type": "credit", "source": source, "credits": int(credits)}


def error_frame(reason: str) -> dict:
    """Terminal failure notice; the sender closes after this."""
    return {"type": "error", "reason": reason}


def bye(source: str) -> dict:
    """Clean end-of-stream for ``source``."""
    return {"type": "bye", "source": source}


def bye_ack(source: str) -> dict:
    """Acknowledge the ``bye`` for ``source``."""
    return {"type": "bye_ack", "source": source}


# -- tuple payload encoding -------------------------------------------------


def tuple_to_record(item: StreamTuple) -> dict[str, Any]:
    """Encode a tuple as the traceio JSONL record convention."""
    return {
        TIMESTAMP_COLUMN: item.timestamp,
        STREAM_COLUMN: item.stream,
        **item.as_dict(),
    }


def record_to_tuple(record: Mapping[str, Any]) -> StreamTuple:
    """Decode a :func:`tuple_to_record` payload.

    Raises:
        ProtocolError: When the reserved timestamp column is absent.
    """
    values = dict(record)
    if TIMESTAMP_COLUMN not in values:
        raise ProtocolError(
            f"data record lacks the {TIMESTAMP_COLUMN!r} column"
        )
    timestamp = values.pop(TIMESTAMP_COLUMN)
    stream = values.pop(STREAM_COLUMN, "")
    return StreamTuple(float(timestamp), values, str(stream))
