"""Consistent hashing for the cluster router's shard placement.

A :class:`HashRing` maps shard keys onto worker labels so that a
membership change moves only the keys owned by the joining/leaving
worker — the property that keeps a rebalance's replay traffic (and the
epoch restart behind it, see :mod:`repro.net.router`) proportional to
one worker's share rather than the whole key space.

Hashing is ``zlib.crc32`` — the same deterministic, process-independent
function :func:`repro.streams.shard.shard_of` uses for batch
partitioning — never Python's salted ``hash()``, so every process in a
cluster (and every rerun of a test) computes identical placements.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterable

from repro.errors import NetError

#: Virtual nodes per worker. More points smooth the key distribution
#: across workers at the cost of a larger (still tiny) sorted table.
DEFAULT_REPLICAS = 64


def _hash(value: str) -> int:
    return zlib.crc32(value.encode("utf-8"))


class HashRing:
    """An immutable consistent-hash ring over worker labels.

    Args:
        nodes: Worker labels; order does not matter, placement depends
            only on the set.
        replicas: Virtual nodes per label.

    Example:
        >>> ring = HashRing(["w0", "w1"])
        >>> ring.owner("tag-17") in ("w0", "w1")
        True
        >>> HashRing(["w0", "w1"]).owner("x") == HashRing(["w1", "w0"]).owner("x")
        True
    """

    def __init__(
        self, nodes: Iterable[str], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        labels = sorted(set(nodes))
        if not labels:
            raise NetError("a hash ring needs at least one node")
        if replicas < 1:
            raise NetError(f"replicas must be at least 1, got {replicas}")
        self._nodes = tuple(labels)
        points: list[tuple[int, str]] = []
        for label in labels:
            for replica in range(replicas):
                # Ties between distinct labels at one hash point resolve
                # by label order via the tuple sort — deterministic.
                points.append((_hash(f"{label}#{replica}"), label))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [label for _, label in points]

    @property
    def nodes(self) -> tuple[str, ...]:
        """The worker labels on the ring, sorted."""
        return self._nodes

    def owner(self, key: str) -> str:
        """The label owning ``key``: first ring point at or after its hash,
        wrapping at the top."""
        index = bisect_right(self._hashes, _hash(str(key)))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Iterable[str]) -> dict[str, str]:
        """Map each key to its owning label."""
        return {str(key): self.owner(str(key)) for key in keys}

    def __repr__(self) -> str:
        return f"HashRing(nodes={list(self._nodes)!r})"
