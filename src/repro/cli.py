"""Command-line interface: run the reproduction's experiments.

Usage::

    python -m repro list                 # available experiments
    python -m repro run all [--fast]     # everything + summary report
    python -m repro run fig5             # one artifact
    python -m repro paper                # show the paper's reference values
    python -m repro serve shelf          # ingestion gateway for a scenario
    python -m repro feed shelf           # replay the scenario into it
    python -m repro worker shelf         # one cluster worker process
    python -m repro cluster shelf \
        --worker w0=127.0.0.1:7107       # route feeders across workers
    python -m repro top                  # live console for a running serve
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable


def _fig3(fast: bool) -> dict:
    from repro.experiments.rfid import figure3
    from repro.scenarios import ShelfScenario

    result = figure3(ShelfScenario(duration=200.0 if fast else 700.0))
    return {
        "errors": result["errors"],
        "raw_alert_rate_per_sec": result["raw_alert_rate_per_sec"],
        "cleaned_alert_rate_per_sec": result["cleaned_alert_rate_per_sec"],
    }


def _fig5(fast: bool) -> dict:
    from repro.experiments.rfid import figure5
    from repro.scenarios import ShelfScenario

    return figure5(ShelfScenario(duration=200.0 if fast else 700.0))


def _fig6(fast: bool) -> dict:
    from repro.experiments.rfid import figure6
    from repro.scenarios import ShelfScenario

    sizes = (0.5, 2.0, 5.0, 15.0, 30.0) if fast else None
    scenario = ShelfScenario(duration=200.0 if fast else 700.0)
    sweep = figure6(scenario, sizes) if sizes else figure6(scenario)
    return {f"{size:g}s": error for size, error in sweep.items()}


def _fig7(fast: bool) -> dict:
    from repro.experiments.intel_lab import figure7
    from repro.scenarios import IntelLabScenario

    scenario = IntelLabScenario(duration=(1.0 if fast else 2.0) * 86400.0)
    result = figure7(scenario)
    return {
        key: value
        for key, value in result.items()
        if key not in ("raw", "average", "esp")
    }


def _sec52(fast: bool) -> dict:
    from repro.experiments.redwood import section52
    from repro.scenarios import RedwoodScenario

    scenario = (
        RedwoodScenario(duration=86400.0, n_groups=8)
        if fast
        else RedwoodScenario()
    )
    return section52(scenario)


def _fig9(fast: bool) -> dict:
    from repro.experiments.office import figure9
    from repro.scenarios import OfficeScenario

    result = figure9(OfficeScenario(duration=300.0 if fast else 600.0))
    return {"accuracy": result["accuracy"], "confusion": result["confusion"]}


def _actuation(fast: bool) -> dict:
    from repro.experiments.actuation import actuation_comparison

    result = actuation_comparison(granules=150 if fast else 400)
    return {"yield": result["yield"], "energy": result["energy"]}


def _model_based(fast: bool) -> dict:
    from repro.experiments.model_based import model_based_comparison

    result = model_based_comparison(
        duration=(1.0 if fast else 2.0) * 86400.0,
        failure_onset=(0.3 if fast else 0.5) * 86400.0,
    )
    return {
        key: value
        for key, value in result.items()
        if key not in ("raw", "cleaned")
    }


EXPERIMENTS: dict[str, tuple[str, Callable[[bool], dict]]] = {
    "fig3": ("Figure 3 — RFID shelf cleaning progression (4)", _fig3),
    "fig5": ("Figure 5 — pipeline configuration ablation (4.2.1)", _fig5),
    "fig6": ("Figure 6 — temporal granule sweep (4.3.2)", _fig6),
    "fig7": ("Figure 7 — fail-dirty outlier detection (5.1)", _fig7),
    "sec52": ("Section 5.2 — redwood epoch yield table", _sec52),
    "fig9": ("Figure 9 — digital-home person detector (6)", _fig9),
    "actuation": ("Extension — receptor actuation (5.3.1)", _actuation),
    "model": ("Extension — BBQ-style model cleaning (6.3.1)", _model_based),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _fn) in EXPERIMENTS.items():
        print(f"  {name:{width}s}  {description}")
    return 0


def _cmd_paper(_args: argparse.Namespace) -> int:
    from repro.experiments.runner import PAPER_VALUES

    print(json.dumps(PAPER_VALUES, indent=2, default=str))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    instrument = args.stats or args.trace_out is not None
    if not instrument:
        return _run_experiment(args)
    # Experiments drive ESPProcessor.run internally; the process-wide
    # default collector is how --stats/--trace-out reach those calls
    # (the same route --shards/--backend take below).
    from repro.streams.telemetry import (
        InMemoryCollector,
        format_table,
        set_default_telemetry,
    )

    collector = InMemoryCollector()
    previous = set_default_telemetry(collector)
    try:
        status = _run_experiment(args)
    finally:
        set_default_telemetry(previous)
    if status != 0:
        return status
    snapshot = collector.snapshot()
    if args.stats:
        from repro.core.pipeline import stage_rollups
        from repro.streams.typedcols import storage_stats

        print(
            format_table(
                snapshot,
                rollups=stage_rollups(snapshot),
                storage=storage_stats(),
            ),
            file=sys.stderr,
        )
    if args.trace_out is not None:
        from repro.streams.traceio import write_trace_events

        count = write_trace_events(snapshot["events"], args.trace_out)
        print(
            f"wrote {count} trace events to {args.trace_out}",
            file=sys.stderr,
        )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    if (
        args.shards is not None
        or args.backend is not None
        or args.mode is not None
    ):
        # Every experiment drives ESPProcessor.run internally; the
        # process-wide execution default is how the flags reach them.
        from repro.streams.shard import set_default_execution

        set_default_execution(
            shards=args.shards, backend=args.backend, mode=args.mode
        )
    if args.experiment == "all":
        from repro.experiments.runner import format_report, run_all

        print(format_report(run_all(fast=args.fast)))
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"try: {', '.join(['all', *EXPERIMENTS])}",
            file=sys.stderr,
        )
        return 2
    _description, fn = EXPERIMENTS[args.experiment]
    result = fn(args.fast)
    print(json.dumps(result, indent=2, default=_jsonable))
    if args.dump:
        written = _dump_series(args.experiment, args.fast, args.dump)
        for path in written:
            print(f"wrote {path}", file=sys.stderr)
    return 0


def _dump_series(experiment: str, fast: bool, directory: str) -> list:
    """Write the figure's plottable series as CSV files.

    Covers the trace-style artifacts (fig3, fig6, fig7, fig9); scalar
    tables are already fully contained in the JSON output.
    """
    import csv
    from pathlib import Path

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def dump(name: str, header: list, rows) -> None:
        path = base / f"{experiment}_{name}.csv"
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        written.append(path)

    if experiment == "fig3":
        from repro.experiments.rfid import figure3
        from repro.scenarios import ShelfScenario

        result = figure3(ShelfScenario(duration=200.0 if fast else 700.0))
        ticks = result["ticks"]
        for trace_name, series in result["traces"].items():
            rows = zip(ticks, series["shelf0"], series["shelf1"])
            dump(trace_name, ["time_s", "shelf0", "shelf1"], rows)
    elif experiment == "fig6":
        sweep = _fig6(fast)
        dump(
            "sweep",
            ["granule_s", "avg_relative_error"],
            [(size.rstrip("s"), error) for size, error in sweep.items()],
        )
    elif experiment == "fig7":
        from repro.experiments.intel_lab import figure7
        from repro.scenarios import IntelLabScenario

        scenario = IntelLabScenario(
            duration=(1.0 if fast else 2.0) * 86400.0
        )
        result = figure7(scenario)
        for mote_id, (times, temps) in result["raw"].items():
            dump(mote_id, ["time_s", "temp_c"], zip(times, temps))
        for name in ("average", "esp"):
            times, temps = result[name]
            dump(name, ["time_s", "temp_c"], zip(times, temps))
    elif experiment == "fig9":
        from repro.experiments.office import figure9
        from repro.scenarios import OfficeScenario

        result = figure9(OfficeScenario(duration=300.0 if fast else 600.0))
        dump(
            "occupancy",
            ["time_s", "truth", "detected"],
            zip(
                result["ticks"],
                result["truth"].astype(int),
                result["detected"].astype(int),
            ),
        )
        for mote_id, (times, values) in result["sound"].items():
            dump(mote_id, ["time_s", "noise"], zip(times, values))
    return written


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.service import serve_scenario

    instrument = (
        args.stats
        or args.trace_out is not None
        or args.span_out is not None
        or args.ops_port is not None
    )
    collector = None
    if instrument:
        from repro.streams.telemetry import InMemoryCollector

        collector = InMemoryCollector()

    def ready(host: str, port: int) -> None:
        print(f"listening on {host}:{port}", file=sys.stderr)

    def ops_ready(host: str, port: int) -> None:
        print(f"ops endpoint on http://{host}:{port}", file=sys.stderr)

    summary = asyncio.run(
        serve_scenario(
            args.scenario,
            args.host,
            args.port,
            slack=args.slack,
            policy=args.policy,
            queue_bound=args.queue_bound,
            duration=args.duration,
            seed=args.seed,
            liveness_timeout=args.liveness_timeout,
            liveness_interval=(
                args.liveness_timeout / 2.0
                if args.liveness_timeout is not None
                else None
            ),
            telemetry=collector,
            ready=ready,
            ops_port=args.ops_port,
            ops_ready=ops_ready,
        )
    )
    if collector is not None:
        snapshot = collector.snapshot()
        if args.stats:
            from repro.core.pipeline import stage_rollups
            from repro.streams.telemetry import format_table
            from repro.streams.typedcols import storage_stats

            print(
                format_table(
                    snapshot,
                    rollups=stage_rollups(snapshot),
                    storage=storage_stats(),
                ),
                file=sys.stderr,
            )
        if args.trace_out is not None:
            from repro.streams.traceio import write_trace_events

            count = write_trace_events(snapshot["events"], args.trace_out)
            print(
                f"wrote {count} trace events to {args.trace_out}",
                file=sys.stderr,
            )
        if args.span_out is not None:
            from repro.streams.traceio import write_trace_events

            count = write_trace_events(snapshot["span_log"], args.span_out)
            print(
                f"wrote {count} span records to {args.span_out}",
                file=sys.stderr,
            )
    print(json.dumps(summary, indent=2, default=_jsonable))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.worker import serve_worker

    collector = None
    if args.ops_port is not None:
        from repro.streams.telemetry import InMemoryCollector

        collector = InMemoryCollector()

    def ready(host: str, port: int) -> None:
        print(f"listening on {host}:{port}", file=sys.stderr)

    def ops_ready(host: str, port: int) -> None:
        print(f"ops endpoint on http://{host}:{port}", file=sys.stderr)

    try:
        summary = asyncio.run(
            serve_worker(
                args.scenario,
                args.host,
                args.port,
                slack=args.slack,
                queue_bound=args.queue_bound,
                duration=args.duration,
                seed=args.seed,
                label=args.label,
                max_epochs=args.max_epochs,
                mode=args.mode,
                telemetry=collector,
                ready=ready,
                ops_port=args.ops_port,
                ops_ready=ops_ready,
            )
        )
    except KeyboardInterrupt:
        return 130
    print(json.dumps(summary, indent=2, default=_jsonable))
    return 0


def _parse_worker_spec(text: str) -> tuple[str, str, int]:
    """Parse a ``label=host:port`` worker argument."""
    label, eq, address = text.partition("=")
    host, colon, port = address.rpartition(":")
    if not eq or not colon or not label or not host:
        raise argparse.ArgumentTypeError(
            f"expected label=host:port, got {text!r}"
        )
    try:
        return label, host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid port in {text!r}"
        ) from None


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.cluster import serve_cluster

    collector = None
    if args.stats or args.ops_port is not None or args.span_out is not None:
        from repro.streams.telemetry import InMemoryCollector

        collector = InMemoryCollector()

    def ready(host: str, port: int) -> None:
        print(f"listening on {host}:{port}", file=sys.stderr)

    def ops_ready(host: str, port: int) -> None:
        print(f"ops endpoint on http://{host}:{port}", file=sys.stderr)

    summary = asyncio.run(
        serve_cluster(
            args.scenario,
            args.worker,
            args.host,
            args.port,
            slack=args.slack,
            queue_bound=args.queue_bound,
            duration=args.duration,
            seed=args.seed,
            telemetry=collector,
            ready=ready,
            ops_port=args.ops_port,
            ops_ready=ops_ready,
            ops_linger=args.ops_linger,
            checkpoint_interval=args.checkpoint_interval,
        )
    )
    if collector is not None:
        snapshot = collector.snapshot()
        if args.stats:
            from repro.core.pipeline import stage_rollups
            from repro.streams.telemetry import format_table

            print(
                format_table(
                    snapshot, rollups=stage_rollups(snapshot)
                ),
                file=sys.stderr,
            )
        if args.span_out is not None:
            from repro.streams.traceio import write_trace_events

            count = write_trace_events(snapshot["span_log"], args.span_out)
            print(
                f"wrote {count} span records to {args.span_out}",
                file=sys.stderr,
            )
    print(json.dumps(summary, indent=2, default=_jsonable))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.faults import chaos_run

    report = asyncio.run(
        chaos_run(
            args.scenario,
            n_workers=args.workers,
            duration=args.duration,
            seed=args.seed,
            fault=args.fault,
            fraction=args.fraction,
            checkpoint_interval=args.checkpoint_interval,
        )
    )
    print(json.dumps(report, indent=2, default=_jsonable))
    # CI-friendly: a run that survived the fault but diverged from the
    # single-node reference is a failure, not a warning.
    return 0 if report["identical"] else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    from repro.net.ops import format_top

    base = f"http://{args.host}:{args.port}"
    previous = None
    elapsed = None
    last_poll = None
    remaining = args.iterations
    while True:
        try:
            with urllib.request.urlopen(
                f"{base}/snapshot", timeout=5.0
            ) as response:
                document = json.loads(response.read().decode("utf-8"))
        except (OSError, ValueError) as error:
            print(f"ops endpoint {base} unreachable: {error}", file=sys.stderr)
            return 1
        now = time.monotonic()
        if last_poll is not None:
            elapsed = now - last_poll
        last_poll = now
        frame = format_top(document, previous, elapsed)
        if args.clear and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(frame, end="", flush=True)
        previous = document
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        time.sleep(args.interval)


def _cmd_feed(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.service import feed_scenario

    report = asyncio.run(
        feed_scenario(
            args.scenario,
            args.host,
            args.port,
            duration=args.duration,
            seed=args.seed,
            mean_delay=args.mean_delay,
            max_delay=args.max_delay,
            loss_yield=args.loss_yield,
            burst=args.burst,
            rate=args.rate,
            delay_seed=args.delay_seed,
        )
    )
    print(json.dumps(report, indent=2, default=_jsonable))
    return 0


def _jsonable(value):
    try:
        import numpy as np

        if isinstance(value, (np.floating, np.integer)):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(value)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the ESP reproduction's experiments.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    commands.add_parser("paper", help="print the paper's reference values")
    run = commands.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment name, or 'all'")
    run.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run for a quick look",
    )
    run.add_argument(
        "--dump",
        metavar="DIR",
        help="also write the figure's plottable series as CSVs into DIR",
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        metavar="N",
        help="partition pipeline execution into N shards (default 1)",
    )
    run.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        help="shard execution backend (default serial)",
    )
    run.add_argument(
        "--mode",
        choices=("row", "columnar", "fused"),
        help=(
            "batch execution mode: per-tuple row path, columnar batch "
            "kernels, or columnar with operator fusion (default row; "
            "all modes produce identical output)"
        ),
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print a per-operator telemetry table to stderr after the run",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the run's telemetry trace events to PATH as JSONL",
    )

    serve = commands.add_parser(
        "serve", help="run the ingestion gateway for a scenario pipeline"
    )
    serve.add_argument(
        "scenario", help="scenario name (see repro.net.service.SCENARIOS)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7007, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--slack",
        type=float,
        default=1.5,
        help="reorder slack in simulation seconds (cover the feeder's "
        "max delay)",
    )
    serve.add_argument(
        "--policy",
        choices=("block", "drop-oldest", "drop-newest"),
        default="block",
        help="ingress overload policy",
    )
    serve.add_argument(
        "--queue-bound",
        type=_positive_int,
        default=64,
        help="per-source ingress queue capacity",
    )
    serve.add_argument(
        "--duration", type=float, help="scenario duration override, seconds"
    )
    serve.add_argument("--seed", type=int, help="scenario seed override")
    serve.add_argument(
        "--liveness-timeout",
        type=float,
        help="evict sources silent for this many wall seconds",
    )
    serve.add_argument(
        "--ops-port",
        type=int,
        metavar="PORT",
        help="also serve /metrics, /healthz, /readyz and /snapshot on "
        "this port (0 = ephemeral; off by default)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print a per-operator telemetry table to stderr after the run",
    )
    serve.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the run's telemetry trace events to PATH as JSONL",
    )
    serve.add_argument(
        "--span-out",
        metavar="PATH",
        help="write the run's ingest span records to PATH as JSONL",
    )

    feed = commands.add_parser(
        "feed", help="replay a scenario's recording into a gateway"
    )
    feed.add_argument(
        "scenario", help="scenario name (must match the server's)"
    )
    feed.add_argument("--host", default="127.0.0.1", help="gateway host")
    feed.add_argument("--port", type=int, default=7007, help="gateway port")
    feed.add_argument(
        "--duration", type=float, help="scenario duration override, seconds"
    )
    feed.add_argument("--seed", type=int, help="scenario seed override")
    feed.add_argument(
        "--mean-delay",
        type=float,
        default=0.0,
        help="mean simulated network delay, seconds (0 = none)",
    )
    feed.add_argument(
        "--max-delay",
        type=float,
        help="delay cap, seconds (default 4x the mean)",
    )
    feed.add_argument(
        "--loss-yield",
        type=float,
        help="bursty-loss channel long-run delivery fraction (e.g. 0.8)",
    )
    feed.add_argument(
        "--burst",
        type=float,
        default=8.0,
        help="mean loss-burst length, in readings",
    )
    feed.add_argument(
        "--rate",
        type=float,
        help="replay speed as a multiple of simulation time "
        "(default: as fast as the gateway accepts)",
    )
    feed.add_argument(
        "--delay-seed",
        type=int,
        default=0,
        help="RNG seed for the delay/loss models",
    )

    worker = commands.add_parser(
        "worker", help="run one cluster worker behind a router"
    )
    worker.add_argument(
        "scenario", help="scenario name (must match the router's)"
    )
    worker.add_argument("--host", default="127.0.0.1", help="bind address")
    worker.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    worker.add_argument(
        "--label",
        default="worker",
        help="worker label for telemetry (the router's hello overrides it)",
    )
    worker.add_argument(
        "--slack",
        type=float,
        default=1.5,
        help="reorder slack in simulation seconds (match the router's)",
    )
    worker.add_argument(
        "--queue-bound",
        type=_positive_int,
        default=64,
        help="per-source ingress queue capacity",
    )
    worker.add_argument(
        "--duration", type=float, help="scenario duration override, seconds"
    )
    worker.add_argument("--seed", type=int, help="scenario seed override")
    worker.add_argument(
        "--max-epochs",
        type=_positive_int,
        metavar="N",
        help="exit after completing N epochs (default: run until killed)",
    )
    worker.add_argument(
        "--mode",
        choices=("row", "columnar", "fused"),
        default="fused",
        help="execution mode for epoch sessions (bit-identical output; "
        "fused keeps punctuation sweeps cheap on deep pipelines)",
    )
    worker.add_argument(
        "--ops-port",
        type=int,
        metavar="PORT",
        help="serve this worker's /metrics, /healthz, /readyz and "
        "/snapshot on this port (0 = ephemeral; off by default)",
    )

    cluster = commands.add_parser(
        "cluster", help="route a scenario's feeders across worker processes"
    )
    cluster.add_argument(
        "scenario", help="scenario name (must match the workers')"
    )
    cluster.add_argument(
        "--worker",
        action="append",
        required=True,
        type=_parse_worker_spec,
        metavar="LABEL=HOST:PORT",
        help="a worker to join at epoch 0 (repeat per worker)",
    )
    cluster.add_argument("--host", default="127.0.0.1", help="bind address")
    cluster.add_argument(
        "--port", type=int, default=7007, help="bind port (0 = ephemeral)"
    )
    cluster.add_argument(
        "--slack",
        type=float,
        default=1.5,
        help="reorder slack in simulation seconds (cover the feeder's "
        "max delay; also the rebalance boundary watermark)",
    )
    cluster.add_argument(
        "--queue-bound",
        type=_positive_int,
        default=64,
        help="per-source credit window, feeder-facing and per worker link",
    )
    cluster.add_argument(
        "--duration", type=float, help="scenario duration override, seconds"
    )
    cluster.add_argument("--seed", type=int, help="scenario seed override")
    cluster.add_argument(
        "--ops-port",
        type=int,
        metavar="PORT",
        help="serve the router's ops plane (cluster-wide telemetry "
        "rollup) on this port (0 = ephemeral; off by default)",
    )
    cluster.add_argument(
        "--ops-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the ops endpoint up this many seconds after the "
        "run completes, so a scraper can take one final /metrics "
        "scrape that includes the committed cluster spans "
        "(default: 0)",
    )
    cluster.add_argument(
        "--stats",
        action="store_true",
        help="print the cluster-wide telemetry rollup to stderr after "
        "the run",
    )
    cluster.add_argument(
        "--span-out",
        metavar="PATH",
        help="write the merged cluster span records (per-hop phase "
        "durations, one record per delivered tuple) to PATH as JSONL; "
        "implies tracing",
    )
    cluster.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        metavar="FRAMES",
        help="ask each worker for a state checkpoint every FRAMES "
        "forwarded data frames (off by default; enables bounded-state "
        "recovery instead of full-history replay)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run one scripted fault against an in-process cluster and "
        "differentially check the output against the single-node run",
    )
    chaos.add_argument("scenario", help="scenario name")
    chaos.add_argument(
        "--fault",
        choices=("kill", "reset", "truncate", "slow", "none"),
        default="kill",
        help="fault to inject against worker w0 (default: kill)",
    )
    chaos.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="cluster size (default: 2)",
    )
    chaos.add_argument(
        "--fraction",
        type=float,
        default=0.4,
        help="position of the fault trigger within the recording's "
        "frame count (default: 0.4)",
    )
    chaos.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        default=24,
        metavar="FRAMES",
        help="worker checkpoint cadence in forwarded frames "
        "(default: 24)",
    )
    chaos.add_argument(
        "--duration", type=float, help="scenario duration override, seconds"
    )
    chaos.add_argument("--seed", type=int, help="scenario seed override")

    top = commands.add_parser(
        "top", help="live console for a gateway's ops endpoint"
    )
    top.add_argument("--host", default="127.0.0.1", help="ops endpoint host")
    top.add_argument(
        "--port", type=int, default=7008, help="ops endpoint port"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls",
    )
    top.add_argument(
        "--iterations",
        type=_positive_int,
        metavar="N",
        help="render N frames then exit (default: run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        dest="clear",
        action="store_false",
        help="append frames instead of clearing the screen",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "paper": _cmd_paper,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "feed": _cmd_feed,
        "worker": _cmd_worker,
        "cluster": _cmd_cluster,
        "chaos": _cmd_chaos,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
