"""ESP — Extensible receptor Stream Processing (reproduction).

A from-scratch Python reproduction of "A Pipelined Framework for Online
Cleaning of Sensor Data Streams" (Jeffery, Alonso, Franklin, Hong, Widom;
ICDE 2006): the five-stage ESP cleaning pipeline (Point → Smooth → Merge
→ Arbitrate → Virtualize), the CQL-subset query engine and windowed
stream substrate it runs on, simulators for the three receptor
technologies the paper deploys (RFID readers, wireless sensor motes, X10
motion detectors), and the full experiment harness regenerating every
table and figure in the paper's evaluation.

Quickstart::

    from repro import (
        ESPPipeline, ESPProcessor, Stage, StageKind, TemporalGranule,
    )
    from repro.core.operators import presence_smoother, max_count_arbitrate
    from repro.scenarios import ShelfScenario

    scenario = ShelfScenario()
    pipeline = ESPPipeline(
        "rfid",
        temporal_granule=scenario.temporal_granule,
        smooth=presence_smoother(),
        arbitrate=max_count_arbitrate(tie_break="weakest",
                                      strength=scenario.strength),
    )
    processor = ESPProcessor(scenario.registry).add_pipeline(pipeline)
    run = processor.run(until=scenario.duration, tick=scenario.poll_period)
    # run.output is the cleaned stream an application would consume.

See ``examples/`` for full walkthroughs and ``DESIGN.md`` for the system
inventory.
"""

from repro.core.granules import ProximityGroup, SpatialGranule, TemporalGranule
from repro.core.pipeline import ESPPipeline, ESPProcessor, ESPRun
from repro.core.stages import (
    ArbitrateStage,
    MergeStage,
    PointStage,
    SmoothStage,
    Stage,
    StageKind,
    VirtualizeStage,
)
from repro.cql import compile_query, parse
from repro.errors import ReproError
from repro.receptors.registry import DeviceRegistry
from repro.streams.fjord import Fjord
from repro.streams.time import Duration, SimClock, parse_duration
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

__version__ = "1.0.0"

__all__ = [
    "ArbitrateStage",
    "DeviceRegistry",
    "Duration",
    "ESPPipeline",
    "ESPProcessor",
    "ESPRun",
    "Fjord",
    "MergeStage",
    "PointStage",
    "ProximityGroup",
    "ReproError",
    "SimClock",
    "SmoothStage",
    "SpatialGranule",
    "Stage",
    "StageKind",
    "StreamTuple",
    "TemporalGranule",
    "VirtualizeStage",
    "WindowSpec",
    "__version__",
    "compile_query",
    "parse",
    "parse_duration",
]
